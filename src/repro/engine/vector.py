"""NumPy-vectorized batch evaluation backend for fixed-topology sweeps.

The paper's headline experiments (Theorem 9 coverage, the eta-channel
Monte Carlo fits, Figures 7-9) are batch-shaped: thousands of scenarios
over *one* circuit, with only channel parameters and stimuli varying.
The scalar engine pays the full event-loop cost per scenario; this module
instead compiles the :class:`~repro.engine.scheduler.CircuitTopology`
once into dense arrays and evaluates **all scenarios simultaneously**:

* per-edge *channel parameter matrices* with one row per scenario
  (constant delays, rejection windows, adversarial eta shifts),
* per-gate *dispatch codes*: gate truth tables flattened into dense
  lookup arrays indexed by packed input-value bits,
* the tentative/transport-cancellation/maturity semantics of the shared
  :class:`~repro.engine.kernel.ChannelKernel` re-expressed as masked
  array operations over a per-scenario pending frontier, processed in
  lockstep over the transition index.

Bit-identity contract
---------------------
``run_many_vector`` is **bit-identical** to ``run_many(backend=
"sequential")``: same transition lists (times compared as exact float64
bits), same event counts, same dropped-transition counts, same SPF
verdicts.  Failing sweeps fail on both backends with the same error when
the failure is unique; when *several* failures coexist (say an
inadmissible adversary shift on one edge and a ``max_events`` overrun),
the scalar engine surfaces whichever its global time order reaches
first, while this backend -- which evaluates edge by edge -- may surface
a different one.  Two design rules make the bit identity possible:

1. Pure float arithmetic (add/sub/mul/compare) is IEEE-deterministic and
   is vectorized freely with the *same operation order* as the scalar
   kernel.
2. Transcendental functions are **not** vectorized through NumPy ufuncs:
   ``np.exp``/``np.log`` use SIMD implementations whose last-ulp rounding
   differs from ``math.exp``/``math.log`` on some hosts, which would break
   bit-identity.  Delay functions are therefore evaluated element-wise
   through the very same ``math``-based scalar code the kernel runs,
   while everything around them (cancellation, maturity, eta application,
   gate evaluation) stays vectorized across scenarios.

Capability model
----------------
The compiler handles cyclic circuits as well as acyclic ones: the
acyclic region is evaluated level by level in one pass, while each
strongly-connected component (storage loops, latches -- the theorem9
experiment's shape) is iterated to a fixpoint in lockstep: loop channels
are re-evaluated from the previous iterate until every member gate's
signal matrix stops changing, which happens once the correct prefix has
grown past the horizon (each pass extends it by the loop's minimum
delay).  A final strict pass then replays the loop channels once more to
count events and surface errors exactly as the acyclic path would.
Unseeded ``RandomAdversary`` channels are materialised at compile time
with per-(scenario, edge) pre-drawn seeds -- the same
fresh-entropy-per-run semantics the scalar engine gives them
(:func:`predraw_random_adversaries` exposes the materialisation so both
backends can be run on identical draws).  The obstacles that remain are
reported by :func:`vector_capability` -- unsupported channel or
adversary classes, zero-delay-only cycles, settle-instant glitches,
scenario-dependent structure -- and same-instant arrival coincidences
that only show up at run time make execution raise
:class:`VectorUnsupportedError`; in both cases
``run_many(backend="vector")`` falls back to the scalar path with the
report attached rather than failing or silently slowing down.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.transitions import Signal, Transition
from .capability import (
    EdgeFact,
    VectorCapability,
    adversary_obstacle,
    analyze_sweep,
)
from .errors import CausalityError, SimulationError
from .scheduler import CircuitTopology, Execution, _NODE_GATE, _NODE_OUTPUT

__all__ = [
    "VectorCapability",
    "VectorUnsupportedError",
    "vector_capability",
    "compile_sweep",
    "predraw_random_adversaries",
    "VectorProgram",
    "run_many_vector",
]

_INF = math.inf
_NEG_INF = -math.inf


# --------------------------------------------------------------------------- #
# Capability reporting
# --------------------------------------------------------------------------- #
# The obstacle detection itself lives in :mod:`repro.engine.capability`
# (shared with the static linter); :class:`VectorCapability` is re-exported
# from there so ``from repro.engine.vector import VectorCapability`` keeps
# working.


class VectorUnsupportedError(SimulationError):
    """Raised by :func:`compile_sweep` when a sweep cannot be vectorized.

    Carries the full :class:`VectorCapability` report as ``report``.
    """

    def __init__(self, report: VectorCapability) -> None:
        super().__init__(report.summary())
        self.report = report


# --------------------------------------------------------------------------- #
# Bit-exact element-wise delay evaluation
# --------------------------------------------------------------------------- #
# NumPy's exp/log SIMD loops round differently from libm in the last ulp
# on some hosts; the evaluators below therefore run the *scalar* math of
# the channels, element by element, with constants hoisted into closure
# cells (the same hoisting the scalar channels perform in __init__).


def _polarity_fn(delta, inf_limit: float, low: float, mode: str):
    """One-polarity delay evaluator mirroring the channel's ``delay_for``.

    ``mode`` selects the guard structure: ``"guarded"`` / ``"unguarded"``
    for :class:`~repro.core.involution_channel.InvolutionChannel` (with
    and without ``guard_domain``), ``"eta"`` for the eta channel's base
    value (the adversarial shift is applied afterwards, vectorized,
    exactly where the scalar code adds it -- on finite base values only).

    For :class:`~repro.core.delay_functions.ExpDelay` the closed form is
    flattened into one call with its constants in closure cells -- the
    exact expression (and therefore rounding) of ``ExpDelay.__call__``.
    Every other delay function goes through its own ``__call__``, which
    is bit-identical by construction.  The evaluators are pure, so
    :func:`_compile` caches them per underlying delay-function object.
    """
    from ..core.delay_functions import ExpDelay

    exp = math.exp
    log = math.log
    if type(delta) is ExpDelay:
        tau = delta.tau
        shift = delta._shift
        offset = delta._offset
        inv_tau = delta._inv_tau
        if mode == "unguarded":

            def fn(T: float) -> float:
                if T == _INF:
                    return inf_limit
                argument = 1.0 - exp(-(T + shift) * inv_tau)
                if argument <= 0.0:
                    return _NEG_INF
                return tau * log(argument) + offset

        else:
            # "guarded" and "eta" share one shape: ExpDelay is -inf on the
            # whole out-of-domain region, so the eta mode's isfinite check
            # collapses into the same early -inf returns.

            def fn(T: float) -> float:
                if T == _INF:
                    return inf_limit
                if T <= low:
                    return _NEG_INF
                argument = 1.0 - exp(-(T + shift) * inv_tau)
                if argument <= 0.0:
                    return _NEG_INF
                return tau * log(argument) + offset

        return fn

    isfinite = math.isfinite
    if mode == "unguarded":

        def fn(T: float) -> float:
            if T == _INF:
                return inf_limit
            return delta(T)

    elif mode == "guarded":

        def fn(T: float) -> float:
            if T == _INF:
                return inf_limit
            if T <= low:
                return _NEG_INF
            return delta(T)

    else:

        def fn(T: float) -> float:
            if T == _INF:
                return inf_limit
            if T <= low:
                return _NEG_INF
            value = delta(T)
            if not isfinite(value):
                return _NEG_INF
            return value

    return fn


def _degradation_fn(channel):
    """Mirror of ``DegradationDelayChannel.delay_for``."""
    nominal = channel.delta_nominal
    tau_deg = channel.tau_deg
    T0 = channel.T0
    isinf = math.isinf
    exp = math.exp

    def fn(T: float) -> float:
        if isinf(T) and T > 0:
            return nominal
        if T <= T0:
            return 0.0
        return nominal * (1.0 - exp(-(T - T0) / tau_deg))

    return fn


# --------------------------------------------------------------------------- #
# Adversary eta matrices
# --------------------------------------------------------------------------- #
# Every supported adversary ignores the previous-output-to-input delay T,
# so its whole shift sequence is a function of (index, time, polarity)
# alone and can be materialised per scenario before the lockstep runs --
# one row of the per-edge eta matrix.  RandomAdversary draws are taken as
# one array call, which consumes the generator's stream exactly like the
# scalar per-transition draws do.


def _eta_builder(channel, where: str):
    """Build ``(times, rising) -> shifts`` for one eta channel.

    The shared analyzer (:func:`repro.engine.capability.adversary_obstacle`)
    rejects every adversary this builder cannot express before compilation
    reaches it; an obstacle surfacing here means the two fell out of sync,
    so the builder raises rather than miscompiling.
    """
    from ..core.adversary import (
        BestCaseAdversary,
        DeCancelAdversary,
        RandomAdversary,
        SequenceAdversary,
        SineAdversary,
        WorstCaseAdversary,
        ZeroAdversary,
    )

    adversary = channel.adversary
    obstacle = adversary_obstacle(adversary)
    if obstacle is not None:
        raise VectorUnsupportedError(
            VectorCapability(False, (f"{where}: {obstacle}",))
        )
    bound = channel.eta
    eta_plus = bound.eta_plus
    eta_minus = bound.eta_minus
    kind = type(adversary)

    if kind is ZeroAdversary:
        return lambda times, rising: np.zeros(len(times))
    if kind is WorstCaseAdversary:
        return lambda times, rising: np.where(rising, eta_plus, -eta_minus)
    if kind in (BestCaseAdversary, DeCancelAdversary):
        return lambda times, rising: np.where(rising, -eta_minus, eta_plus)
    if kind is RandomAdversary:
        seed = adversary._seed
        if seed is None:
            # _compile materialises unseeded adversaries with pre-drawn
            # seeds before any builder runs; reaching here means that
            # pass was skipped, and miscompiling silently would produce
            # unreplayable draws.
            raise SimulationError(
                f"{where}: unseeded RandomAdversary reached the vector "
                "builder without a pre-drawn seed"
            )
        distribution = adversary.distribution
        sigma = adversary.sigma_fraction * bound.width / 2.0

        def random_draws(times, rising):
            n = len(times)
            rng = np.random.default_rng(seed)
            if distribution == "uniform":
                return rng.uniform(-eta_minus, eta_plus, size=n)
            if sigma == 0.0:
                return np.zeros(n)
            draws = rng.normal(0.0, sigma, size=n)
            return np.minimum(np.maximum(draws, -eta_minus), eta_plus)

        return random_draws
    if kind is SineAdversary:
        period = adversary.period
        phase = adversary.phase
        fraction = adversary.amplitude_fraction
        clip = bound.clip
        sin = math.sin
        two_pi = 2.0 * math.pi

        def sine_shifts(times, rising):
            out = np.empty(len(times))
            for i, t in enumerate(times):
                s = sin(two_pi * t / period + phase)
                amplitude = eta_plus if s >= 0 else eta_minus
                out[i] = clip(fraction * amplitude * s)
            return out

        return sine_shifts
    if kind is SequenceAdversary:
        shifts = adversary.shifts
        fill = adversary.fill
        clip_values = adversary.clip_values
        clip = bound.clip
        contains = bound.contains

        def sequence_shifts(times, rising):
            out = np.empty(len(times))
            for i in range(len(times)):
                eta = shifts[i] if i < len(shifts) else fill
                if clip_values:
                    eta = clip(eta)
                elif not contains(eta):
                    raise ValueError(
                        f"shift {eta} at index {i} is outside the admissible "
                        f"interval [-{eta_minus}, {eta_plus}]"
                    )
                out[i] = eta
            return out

        return sequence_shifts
    raise SimulationError(
        f"{where}: no vector builder for adversary {kind.__name__}"
    )


# --------------------------------------------------------------------------- #
# Per-edge channel programs
# --------------------------------------------------------------------------- #


@dataclass
class _EdgeProgram:
    """Compiled vector semantics of one edge across all scenarios."""

    eid: int
    name: str
    source_id: int
    zero_delay: bool
    inverting: bool
    #: Same-instant hazard classification of the target (see
    #: ``_eval_timed_edge``): gates can be double-evaluated within one
    #: engine batch time, output ports cannot.
    target_is_gate: bool = False
    target_multi_input: bool = False
    #: True when some gate's settle evaluation changes its value at time
    #: 0 -- a delivery at or before 0 would then interleave with the
    #: settle transition in an engine-batch-order-specific way.
    settle_sensitive: bool = False
    #: Constant-delay fast path: per-scenario (rising, falling) delays.
    const_up: Optional[np.ndarray] = None
    const_down: Optional[np.ndarray] = None
    #: General path: per-scenario scalar delay evaluators per polarity.
    fns_up: Optional[List[Callable[[float], float]]] = None
    fns_down: Optional[List[Callable[[float], float]]] = None
    #: Per-scenario inertial rejection windows.
    windows: Optional[np.ndarray] = None
    #: Eta channels: per-scenario shift builders and admissible bounds
    #: (rows of non-eta scenarios hold None / +-inf).
    eta_builders: Optional[List[Optional[Callable]]] = None
    eta_lo: Optional[np.ndarray] = None
    eta_hi: Optional[np.ndarray] = None
    eta_bounds: Optional[List[Optional[object]]] = None


def _cached_polarity_fn(cache: Dict, delta, inf_limit: float, low: float, mode: str):
    """Memoized :func:`_polarity_fn` (evaluators are pure; sweeps reuse
    the same delay-function objects across thousands of scenario
    channels, e.g. every ``with_adversary`` copy shares its pair)."""
    key = (id(delta), inf_limit, low, mode)
    hit = cache.get(key)
    if hit is not None and hit[0] is delta:
        return hit[1]
    fn = _polarity_fn(delta, inf_limit, low, mode)
    cache[key] = (delta, fn)
    return fn


def _compile_edge(
    fact: EdgeFact,
    ename: str,
    run_channels: List[object],
    fn_cache: Dict,
) -> _EdgeProgram:
    """Build one edge's compiled program from its analyzer fact.

    The shared analyzer (:func:`repro.engine.capability.analyze_sweep`)
    has already vetted ``run_channels`` -- supported classes only, no
    same-instant hazards, scenario-uniform zero-delay/inverting flags --
    so this is pure construction and cannot fail.
    """
    from ..core.baselines import (
        DegradationDelayChannel,
        InertialDelayChannel,
        PureDelayChannel,
    )
    from ..core.eta_channel import EtaInvolutionChannel
    from ..core.involution_channel import InvolutionChannel

    S = len(run_channels)
    if fact.zero_delay:
        return _EdgeProgram(
            eid=fact.eid,
            name=ename,
            source_id=fact.source_id,
            zero_delay=True,
            inverting=fact.inverting,
            target_is_gate=fact.target_is_gate,
            target_multi_input=fact.target_multi_input,
        )

    program = _EdgeProgram(
        eid=fact.eid,
        name=ename,
        source_id=fact.source_id,
        zero_delay=False,
        inverting=fact.inverting,
        target_is_gate=fact.target_is_gate,
        target_multi_input=fact.target_multi_input,
        windows=np.zeros(S),
    )
    all_const = all(
        type(ch) in (PureDelayChannel, InertialDelayChannel) for ch in run_channels
    )
    if all_const:
        program.const_up = np.empty(S)
        program.const_down = np.empty(S)
    else:
        program.fns_up = [None] * S
        program.fns_down = [None] * S
    has_eta = any(type(ch) is EtaInvolutionChannel for ch in run_channels)
    if has_eta:
        program.eta_builders = [None] * S
        program.eta_lo = np.full(S, _NEG_INF)
        program.eta_hi = np.full(S, _INF)
        program.eta_bounds = [None] * S

    for s, channel in enumerate(run_channels):
        kind = type(channel)
        program.windows[s] = channel.rejection_window()
        if kind is PureDelayChannel:
            up, down = channel.rising_delay, channel.falling_delay
        elif kind is InertialDelayChannel:
            up = down = channel.delay
        elif kind is DegradationDelayChannel:
            fn = _degradation_fn(channel)
            program.fns_up[s] = fn
            program.fns_down[s] = fn
            continue
        elif kind is InvolutionChannel:
            mode = "guarded" if channel.guard_domain else "unguarded"
            program.fns_up[s] = _cached_polarity_fn(
                fn_cache, channel._delta_up, channel._up_inf, channel._up_low, mode
            )
            program.fns_down[s] = _cached_polarity_fn(
                fn_cache, channel._delta_down, channel._down_inf,
                channel._down_low, mode,
            )
            continue
        else:  # EtaInvolutionChannel
            builder = _eta_builder(channel, f"edge {ename!r}")
            program.fns_up[s] = _cached_polarity_fn(
                fn_cache, channel._delta_up, channel._up_inf, channel._up_low, "eta"
            )
            program.fns_down[s] = _cached_polarity_fn(
                fn_cache, channel._delta_down, channel._down_inf,
                channel._down_low, "eta",
            )
            program.eta_builders[s] = builder
            program.eta_lo[s] = channel._eta_lo
            program.eta_hi[s] = channel._eta_hi
            program.eta_bounds[s] = channel.eta
            continue
        if all_const:
            program.const_up[s] = up
            program.const_down[s] = down
        else:
            program.fns_up[s] = lambda T, _up=up: _up
            program.fns_down[s] = lambda T, _down=down: _down
    return program


# --------------------------------------------------------------------------- #
# Signal matrices
# --------------------------------------------------------------------------- #
# Every node/edge signal of the sweep is held as (times, counts, initial):
# a float64 [S, N] matrix padded with +inf, a per-scenario transition
# count, and the (scenario-uniform) initial value.  Values need no
# storage: well-formed signals alternate, so the value at index n is a
# pure function of n and the initial value.


@dataclass
class _SignalMatrix:
    """Padded per-scenario transition-time matrix of one node or edge."""

    times: np.ndarray  # [S, N] float64, +inf padded
    counts: np.ndarray  # [S] int64
    initial: int


def _empty_matrix(S: int, initial: int) -> _SignalMatrix:
    return _SignalMatrix(np.empty((S, 0)), np.zeros(S, dtype=np.int64), initial)


# --------------------------------------------------------------------------- #
# The lockstep channel kernel
# --------------------------------------------------------------------------- #


def _eval_timed_edge(
    program: _EdgeProgram,
    source: _SignalMatrix,
    end_times: np.ndarray,
    on_causality: str,
    *,
    strict: bool = True,
    scc_internal: bool = False,
) -> Tuple[_SignalMatrix, np.ndarray, np.ndarray]:
    """Run one edge's channel kernel over all scenarios in lockstep.

    Mirrors ``ChannelKernel.feed``/``mature``/``flush`` (which the
    equivalence suite pins bit-identical to the event-driven engine):
    the loop runs over the transition *index*, each step a handful of
    masked array operations across scenarios.  Returns the delivered
    signal matrix plus per-scenario DELIVER-event and dropped counts.

    ``strict=False`` is the fixpoint scheduler's *deferred* mode: the
    source matrix is a provisional iterate whose suffix may be garbage,
    so conditions that would normally raise (causality violations,
    inadmissible adversary shifts, same-instant hazards) are silently
    degraded -- violations drop, shifts clip -- and the caller discards
    the event/drop counts.  Once the iterate converges, a final
    ``strict=True, scc_internal=True`` pass replays the edge exactly;
    ``scc_internal`` additionally refuses any delivery scheduled at or
    before its feeding instant, because a non-positive realised delay
    inside a feedback loop breaks the contraction the fixpoint relies
    on (the scalar engine resolves those with batch ordering).
    """
    times, counts = source.times, source.counts
    S, N = times.shape
    out_initial = (1 - source.initial) if program.inverting else source.initial
    events = np.zeros(S, dtype=np.int64)
    dropped = np.zeros(S, dtype=np.int64)
    if N == 0:
        return _empty_matrix(S, out_initial), events, dropped

    # Output values/polarity by transition index (scenario-uniform).
    in_values = ((np.arange(N) + 1) & 1) ^ source.initial
    out_values = (1 - in_values) if program.inverting else in_values
    rising = out_values == 1

    # Eta matrix: one row of adversarial shifts per scenario.
    eta_mat = None
    eta_rows = None
    if program.eta_builders is not None:
        eta_mat = np.zeros((S, N))
        eta_rows = np.zeros(S, dtype=bool)
        for s, builder in enumerate(program.eta_builders):
            if builder is None:
                continue
            n = int(counts[s])
            eta_rows[s] = True
            if n == 0:
                continue
            lo, hi = program.eta_lo[s], program.eta_hi[s]
            if strict:
                shifts = np.asarray(
                    builder(times[s, :n], rising[:n]), dtype=float
                )
                if np.any((shifts < lo) | (shifts > hi)):
                    bad = shifts[(shifts < lo) | (shifts > hi)][0]
                    bound = program.eta_bounds[s]
                    raise ValueError(
                        f"adversary produced inadmissible shift {bad} outside "
                        f"[-{bound.eta_minus}, {bound.eta_plus}]"
                    )
            else:
                # Deferred iterate: shifts drawn for a garbage suffix may
                # be inadmissible; clip them (the converged strict pass
                # re-validates) and turn builder refusals into fallback.
                try:
                    shifts = np.asarray(
                        builder(times[s, :n], rising[:n]), dtype=float
                    )
                except ValueError as exc:
                    raise VectorUnsupportedError(
                        VectorCapability(
                            False, (f"edge {program.name!r}: {exc}",)
                        )
                    )
                shifts = np.minimum(np.maximum(shifts, lo), hi)
            eta_mat[s, :n] = shifts

    # Kernel state, one lane per scenario.
    last_in = np.full(S, _NEG_INF)
    last_delay = np.zeros(S)
    pending_times = np.empty((S, N))
    pending_values = np.empty((S, N), dtype=np.int8)
    pending_risky = np.zeros((S, N), dtype=bool)
    head = np.zeros(S, dtype=np.int64)
    top = np.zeros(S, dtype=np.int64)
    delivered_times = np.full((S, N), _INF)
    delivered_counts = np.zeros(S, dtype=np.int64)
    delivered_value = np.full(S, out_initial, dtype=np.int8)
    last_delivered = np.full(S, _NEG_INF)
    lanes = np.arange(S)
    windows = program.windows
    any_window = bool(np.any(windows > 0.0))
    const_mode = program.const_up is not None

    def deliver_upto(limit: np.ndarray, mask: np.ndarray) -> None:
        # The offline counterpart of the event queue: pop the pending
        # frontier head while it has matured (time <= limit), suppressing
        # no-change deliveries -- one masked gather/scatter per frontier
        # depth, which stays tiny for FIFO-ish workloads.
        while True:
            rows = lanes[mask & (head < top)]
            if rows.size == 0:
                return
            ready_times = pending_times[rows, head[rows]]
            ready = ready_times <= limit[rows]
            rows = rows[ready]
            if rows.size == 0:
                return
            ready_times = ready_times[ready]
            values = pending_values[rows, head[rows]]
            risky = pending_risky[rows, head[rows]]
            head[rows] += 1
            events[rows] += 1
            changed = values != delivered_value[rows]
            # A same-instant (or time-reversed) delivery is benign while
            # it changes nothing: the engine suppresses it without ever
            # evaluating the gate.  Only a *value-changing* one opens an
            # interleaved batch the levelized evaluation cannot replay.
            if strict and bool(np.any(changed & risky)):
                if scc_internal:
                    reason = (
                        f"edge {program.name!r}: a feedback-loop channel "
                        "delivered a same-instant (or earlier) value "
                        "change, which the event-driven engine resolves "
                        "with batch ordering the fixpoint schedule "
                        "cannot replay"
                    )
                else:
                    reason = (
                        f"edge {program.name!r}: a channel scheduled a "
                        "same-instant (or earlier) delivery, which the "
                        "engine resolves with batch ordering the vector "
                        "backend cannot replay"
                    )
                raise VectorUnsupportedError(
                    VectorCapability(False, (reason,))
                )
            rows = rows[changed]
            if rows.size:
                stamped = ready_times[changed]
                delivered_times[rows, delivered_counts[rows]] = stamped
                delivered_counts[rows] += 1
                delivered_value[rows] = values[changed]
                last_delivered[rows] = stamped

    # Uniform sweeps (every scenario sees the same transition count, the
    # Monte Carlo steady state) take an all-lanes-active fast path that
    # skips the per-step masking entirely.
    counts_min = int(counts.min()) if S else 0
    all_lanes = np.ones(S, dtype=bool)
    all_rows_list = list(range(S))
    # One shared evaluator per polarity (the memoized-closure common case
    # -- every Monte Carlo override reuses the same delay pair) unlocks a
    # straight map over the row.
    uniform_up = uniform_down = None
    if not const_mode:
        if all(fn is program.fns_up[0] for fn in program.fns_up):
            uniform_up = program.fns_up[0]
        if all(fn is program.fns_down[0] for fn in program.fns_down):
            uniform_down = program.fns_down[0]

    for n in range(N):
        full = n < counts_min
        if full:
            active = all_lanes
            active_rows = lanes
        else:
            active = n < counts
            active_rows = lanes[active]
            if active_rows.size == 0:
                break
        t = times[:, n]
        deliver_upto(t, active)

        # -- fused tentative phase (vector mirror of ChannelKernel.feed) --
        T = t - last_in - last_delay
        if full and n > 0:
            pass  # every lane fed at step 0: last_in is finite everywhere
        elif full:
            T[last_in == _NEG_INF] = _INF
        else:
            T[active & (last_in == _NEG_INF)] = _INF
        if const_mode:
            delay = (program.const_up if rising[n] else program.const_down).copy()
        else:
            # Inactive lanes keep a harmless 0.0 (never read): garbage or
            # NaN here would raise invalid-value warnings downstream.
            # The evaluators run on plain Python floats (tolist), not
            # NumPy scalars -- same 64-bit values, several times cheaper
            # through ``math``.
            T_list = T.tolist()
            shared = uniform_up if rising[n] else uniform_down
            if full and shared is not None:
                delay = np.fromiter(map(shared, T_list), dtype=float, count=S)
            elif full:
                fns = program.fns_up if rising[n] else program.fns_down
                delay = np.array([fns[s](T_list[s]) for s in all_rows_list])
            else:
                fns = program.fns_up if rising[n] else program.fns_down
                delay = np.zeros(S)
                delay[active_rows] = [
                    fns[s](T_list[s]) for s in active_rows.tolist()
                ]
        if eta_mat is not None:
            add = eta_rows & np.isfinite(delay)
            if not full:
                add &= active
            if add.any():
                delay[add] = delay[add] + eta_mat[add, n]
        if full:
            np.copyto(last_in, t)
            np.copyto(last_delay, delay)
        else:
            last_in[active_rows] = t[active_rows]
            last_delay[active_rows] = delay[active_rows]
        out_time = t + delay

        # -- fused cancellation phase --
        # Transport cancellation: the cancelled entries are exactly a
        # suffix of the time-sorted frontier; pop while the top is at or
        # after the new output time.
        while True:
            rows = lanes[(top > head) if full else (active & (top > head))]
            if rows.size == 0:
                break
            pop = pending_times[rows, top[rows] - 1] >= out_time[rows]
            rows = rows[pop]
            if rows.size == 0:
                break
            top[rows] -= 1
        # The inertial-window pop fires only on non-empty frontiers, so
        # applying the isfinite cut first cannot change which tops are
        # popped (a -inf output time just emptied the frontier above).
        if full:
            pushable = np.isfinite(out_time)
        else:
            pushable = active & np.isfinite(out_time)
        if any_window:
            rows = lanes[active & (windows > 0.0) & (top > head)]
            if rows.size:
                reject = (
                    out_time[rows] - pending_times[rows, top[rows] - 1]
                    < windows[rows]
                )
                rows = rows[reject]
                top[rows] -= 1
                pushable[rows] = False
        causal = pushable & (out_time <= last_delivered)
        if causal.any():
            violation = causal & (out_values[n] != delivered_value)
            if violation.any():
                if strict and on_causality == "error":
                    s = int(lanes[violation][0])
                    raise CausalityError(
                        f"channel {program.name!r} scheduled an output at "
                        f"{out_time[s]:g} but already delivered one at "
                        f"{last_delivered[s]:g}"
                    )
                dropped[violation] += 1
            pushable &= ~causal
        # Same-instant / time-reversed deliveries: scheduling an output at
        # (or before) the feeding instant opens additional engine batches
        # at already-processed timestamps.  That is harmless for a strict
        # time reversal (out < t) into a single-input gate or an output
        # port after the settle instant, and for any delivery that ends
        # up suppressed (glitch cancellation delivers no value change, so
        # the engine never evaluates the gate).  Everything else -- exact
        # same-instant gate deliveries, reversals interleaving with other
        # inputs of a multi-input gate or with a time-0 settle transition,
        # any reversal inside a feedback loop -- is
        # engine-batch-order-specific, so the entry is *flagged* here and
        # refused in ``deliver_upto`` if it matures as a value change.
        flagged = None
        if program.target_is_gate or scc_internal:
            risky = pushable & (out_time <= t)
            if risky.any():
                if scc_internal or program.target_multi_input:
                    flagged = risky
                else:
                    floor = 0.0 if program.settle_sensitive else _NEG_INF
                    flagged = risky & ~((out_time < t) & (out_time > floor))
        rows = lanes[pushable]
        pending_times[rows, top[rows]] = out_time[rows]
        pending_values[rows, top[rows]] = out_values[n]
        pending_risky[rows, top[rows]] = (
            False if flagged is None else flagged[rows]
        )
        top[rows] += 1

    deliver_upto(end_times, np.ones(S, dtype=bool))
    width = int(delivered_counts.max())
    return (
        _SignalMatrix(delivered_times[:, :width], delivered_counts, out_initial),
        events,
        dropped,
    )


# --------------------------------------------------------------------------- #
# Vectorized gate evaluation
# --------------------------------------------------------------------------- #


def _gate_table_array(gate_type, k: int) -> np.ndarray:
    """Flatten a gate truth table into a dense dispatch-code lookup array."""
    table = gate_type.truth_table()
    array = np.zeros(1 << k, dtype=np.int8)
    for key, value in table.items():
        code = 0
        for bit in key:
            code = (code << 1) | bit
        array[code] = value
    return array


def _eval_gate(
    gate_initial: int,
    table: np.ndarray,
    inputs: List[_SignalMatrix],
    end_times: np.ndarray,
) -> _SignalMatrix:
    """Evaluate one gate over all scenarios from its input edge signals.

    Merges the input transition times per scenario (plus the time-0
    settle evaluation the engine schedules), reads each input's value at
    every merged time via ``searchsorted`` parity counts, dispatches
    through the flattened truth table, and keeps exactly the evaluations
    that change the running output value -- the same evaluations the
    event loop performs batch by batch.
    """
    S = len(end_times)
    k = len(inputs)
    if k == 1:
        src = inputs[0]
        flips = table[0] != table[1]
        consistent = table[src.initial] == gate_initial
        positive = (
            src.times.shape[1] == 0
            or bool(np.all(src.times[:, 0] > 0.0))
        )
        if flips and consistent and positive:
            # BUF/INV chains with consistent initial values: the output
            # transitions at exactly the input times (values implied by
            # alternation), and the settle pass is a no-op.
            return _SignalMatrix(src.times, src.counts, gate_initial)

    widths = [m.times.shape[1] for m in inputs]
    total = 1 + sum(widths)
    merged = np.full((S, total), _INF)
    # The settle evaluation at time 0; the engine skips it for horizons
    # before 0 (the event loop breaks before reaching the settle batch).
    merged[:, 0] = np.where(end_times >= 0.0, 0.0, _INF)
    column = 1
    for matrix in inputs:
        width = matrix.times.shape[1]
        if width:
            merged[:, column : column + width] = matrix.times
        column += width
    merged.sort(axis=1)
    finite = np.isfinite(merged)
    keep = finite.copy()
    keep[:, 1:] &= merged[:, 1:] != merged[:, :-1]

    codes = np.zeros((S, total), dtype=np.intp)
    for matrix in inputs:
        values = np.empty((S, total), dtype=np.intp)
        for s in range(S):
            row = matrix.times[s, : matrix.counts[s]]
            values[s] = np.searchsorted(row, merged[s], side="right")
        codes = (codes << 1) | ((values & 1) ^ matrix.initial)
    out_values = table[codes]

    # Left-pack the kept evaluations, then keep only value changes.
    order = np.argsort(~keep, axis=1, kind="stable")
    packed_times = np.take_along_axis(merged, order, axis=1)
    packed_values = np.take_along_axis(out_values, order, axis=1)
    kept = keep.sum(axis=1)
    columns = np.arange(total)
    previous = np.concatenate(
        [np.full((S, 1), gate_initial, dtype=packed_values.dtype),
         packed_values[:, :-1]],
        axis=1,
    )
    change = (packed_values != previous) & (columns[None, :] < kept[:, None])
    order = np.argsort(~change, axis=1, kind="stable")
    out_times = np.take_along_axis(packed_times, order, axis=1)
    out_counts = change.sum(axis=1).astype(np.int64)
    out_times[columns[None, :] >= out_counts[:, None]] = _INF
    width = int(out_counts.max()) if S else 0
    return _SignalMatrix(out_times[:, :width], out_counts, gate_initial)


# --------------------------------------------------------------------------- #
# Compilation
# --------------------------------------------------------------------------- #


@dataclass
class VectorProgram:
    """A sweep compiled onto the vector backend, ready to execute.

    Produced by :func:`compile_sweep`; :meth:`run` evaluates every
    scenario simultaneously and returns per-scenario
    :class:`~repro.engine.sweep.RunResult` objects bit-identical to the
    scalar sequential backend.
    """

    topology: CircuitTopology
    scenarios: Sequence[object]
    on_causality: str
    max_events: int
    report: VectorCapability = field(default_factory=lambda: VectorCapability(True))
    #: Kahn order for acyclic circuits; ``None`` when the circuit has
    #: feedback, in which case ``components`` drives the evaluation.
    order: Optional[List[int]] = field(repr=False, default=None)
    #: SCCs in condensation topological order (cyclic circuits only).
    components: Optional[List[List[int]]] = field(repr=False, default=None)
    edge_programs: Dict[int, _EdgeProgram] = field(repr=False, default_factory=dict)
    port_initials: Dict[str, int] = field(repr=False, default_factory=dict)

    def run(self) -> List[object]:
        """Execute all scenarios and assemble per-scenario results.

        The cyclic garbage collector is paused for the duration: a large
        sweep assembles millions of long-lived Transition/Signal objects
        in one burst, and generational collections scanning that growing
        heap would otherwise triple the assembly cost.
        """
        import gc

        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            return self._run()
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run(self) -> List[object]:
        from .sweep import RunResult

        start = _time.perf_counter()
        topo = self.topology
        scenarios = list(self.scenarios)
        S = len(scenarios)
        end_times = np.array([float(sc.end_time) for sc in scenarios])

        # --- input ports: truncate to each scenario's horizon ------------- #
        node_matrices: Dict[int, _SignalMatrix] = {}
        port_slices: Dict[str, List[tuple]] = {}
        event_counts = np.zeros(S, dtype=np.int64)
        for pid, pname in zip(topo.input_port_ids, topo.input_ports):
            counts = np.zeros(S, dtype=np.int64)
            rows = []
            for s, scenario in enumerate(scenarios):
                signal = scenario.inputs[pname]
                transitions = signal.transitions
                n = len(transitions)
                while n and transitions[n - 1].time > end_times[s]:
                    n -= 1
                counts[s] = n
                rows.append(transitions[:n])
            width = int(counts.max())
            times = np.full((S, width), _INF)
            for s, row in enumerate(rows):
                for i, transition in enumerate(row):
                    times[s, i] = transition.time
            node_matrices[pid] = _SignalMatrix(
                times, counts, self.port_initials[pname]
            )
            port_slices[pname] = rows
            event_counts += counts

        if topo.gate_ids:
            event_counts += (end_times >= 0.0).astype(np.int64)

        # --- levelized / fixpoint evaluation ------------------------------ #
        edge_matrices: Dict[int, _SignalMatrix] = {}
        dropped_counts = np.zeros(S, dtype=np.int64)

        def node_incoming(nid: int) -> Tuple[int, str, Tuple[int, ...]]:
            kind = topo.node_kind[nid]
            name = topo.node_names[nid]
            incoming = (
                topo.gate_input_edge_ids[nid]
                if kind == _NODE_GATE
                else tuple(
                    topo.edge_index[e.name] for e in topo.edges_into[name]
                )
            )
            return kind, name, incoming

        def eval_edge(
            eid: int, *, strict: bool = True, scc_internal: bool = False
        ) -> None:
            nonlocal event_counts, dropped_counts
            program = self.edge_programs[eid]
            source = node_matrices[program.source_id]
            if program.zero_delay:
                initial = (
                    (1 - source.initial) if program.inverting else source.initial
                )
                edge_matrices[eid] = _SignalMatrix(
                    source.times, source.counts, initial
                )
                return
            delivered, events, dropped = _eval_timed_edge(
                program, source, end_times, self.on_causality,
                strict=strict, scc_internal=scc_internal,
            )
            edge_matrices[eid] = delivered
            if strict:
                event_counts += events
                dropped_counts += dropped

        def check_same_instant(name: str, incoming: Tuple[int, ...]) -> None:
            # The tie-break pass: a gate's same-instant arrivals replay
            # exactly when they all land in one engine wave.  Arrivals
            # are classified by wave -- timed deliveries (batch wave 0),
            # zero-delay edges from input ports (delta cycle 1), and
            # zero-delay edges keyed per source gate (whichever delta
            # cycle that gate changed in).  Within one class the merged
            # evaluation in ``_eval_gate`` applies every arrival in a
            # single evaluation, mirroring the Scheduler's wave; arrivals
            # from *distinct* classes at one instant would interleave
            # evaluations the levelized pass cannot see, so refuse and
            # let ``run_many`` fall back.
            classes: Dict[object, List[_SignalMatrix]] = {}
            for eid in incoming:
                program = self.edge_programs[eid]
                if program.zero_delay:
                    src = program.source_id
                    key: object = (
                        ("gate", src)
                        if topo.node_kind[src] == _NODE_GATE
                        else "ports"
                    )
                else:
                    key = "deliver"
                classes.setdefault(key, []).append(edge_matrices[eid])
            if len(classes) < 2:
                return
            groups = list(classes.values())
            for i in range(len(groups)):
                for j in range(i + 1, len(groups)):
                    for ma in groups[i]:
                        for mb in groups[j]:
                            for s in range(S):
                                a = ma.times[s, : ma.counts[s]]
                                b = mb.times[s, : mb.counts[s]]
                                if (
                                    a.size
                                    and b.size
                                    and np.intersect1d(a, b).size
                                ):
                                    raise VectorUnsupportedError(
                                        VectorCapability(
                                            False,
                                            (
                                                f"gate {name!r}: same-instant "
                                                "arrivals through zero-delay "
                                                "and timed paths interleave "
                                                "across engine delta cycles "
                                                "the vector backend cannot "
                                                "replay",
                                            ),
                                        )
                                    )

        def eval_node(nid: int) -> None:
            kind, name, incoming = node_incoming(nid)
            for eid in incoming:
                eval_edge(eid)
            if kind == _NODE_GATE:
                check_same_instant(name, incoming)
                node_matrices[nid] = _eval_gate(
                    topo.gate_initial_by_node[nid],
                    _gate_table_array(topo.gate_types[name], len(incoming)),
                    [edge_matrices[eid] for eid in incoming],
                    end_times,
                )
            elif kind == _NODE_OUTPUT:
                node_matrices[nid] = edge_matrices[incoming[0]]

        def run_component(members: List[int]) -> None:
            # Iterate-to-fixpoint lockstep over one feedback component.
            # Gauss-Seidel from empty member signals: every pass extends
            # the correct prefix by at least the loop's minimum realised
            # delay, so the iterate converges once the prefix covers the
            # horizon.  Deliveries beyond ``end_time`` never enter the
            # matrices, which bounds the fixpoint.
            member_set = set(members)
            gates = []
            for gid in sorted(members):
                kind, name, incoming = node_incoming(gid)
                if kind != _NODE_GATE:
                    # Unreachable: ports have no in-edges and output
                    # ports no out-edges, so cycles contain only gates.
                    raise SimulationError(
                        f"feedback component contains non-gate node {name!r}"
                    )
                internal = tuple(
                    eid
                    for eid in incoming
                    if self.edge_programs[eid].source_id in member_set
                )
                external = tuple(
                    eid for eid in incoming if eid not in internal
                )
                table = _gate_table_array(
                    topo.gate_types[name], len(incoming)
                )
                gates.append((gid, name, incoming, internal, external, table))

            # External context: upstream of the loop, evaluated exactly
            # once (strict, counted) like any acyclic edge.
            for gid, name, incoming, internal, external, table in gates:
                for eid in external:
                    eval_edge(eid)
            for gid, *_ in gates:
                node_matrices[gid] = _empty_matrix(
                    S, topo.gate_initial_by_node[gid]
                )

            iterations = 0
            total_steps = 0
            while True:
                iterations += 1
                before = [
                    (
                        node_matrices[gid].times.tobytes(),
                        node_matrices[gid].counts.tobytes(),
                    )
                    for gid, *_ in gates
                ]
                for gid, name, incoming, internal, external, table in gates:
                    for eid in internal:
                        source_id = self.edge_programs[eid].source_id
                        total_steps += int(
                            node_matrices[source_id].times.shape[1]
                        )
                        eval_edge(eid, strict=False)
                    node_matrices[gid] = _eval_gate(
                        topo.gate_initial_by_node[gid],
                        table,
                        [edge_matrices[eid] for eid in incoming],
                        end_times,
                    )
                after = [
                    (
                        node_matrices[gid].times.tobytes(),
                        node_matrices[gid].counts.tobytes(),
                    )
                    for gid, *_ in gates
                ]
                if after == before:
                    break
                width = max(
                    node_matrices[gid].times.shape[1] for gid, *_ in gates
                )
                names = sorted(name for _, name, *_ in gates)
                if iterations > 96 and width > iterations:
                    # Signals growing faster than the iteration count is
                    # the free-running-oscillator signature; converging
                    # storage loops keep a bounded width while the
                    # prefix sweeps the horizon.
                    raise VectorUnsupportedError(
                        VectorCapability(
                            False,
                            (
                                f"feedback loop through gates {names} "
                                "keeps generating transitions instead of "
                                "converging (free-running oscillation is "
                                "inherently event-driven)",
                            ),
                        )
                    )
                if total_steps > 150_000 or iterations > 20_000:
                    raise VectorUnsupportedError(
                        VectorCapability(
                            False,
                            (
                                f"feedback loop through gates {names} "
                                "exceeded the fixpoint iteration budget "
                                f"({iterations} passes)",
                            ),
                        )
                    )

            # Converged: replay the loop channels once, strictly, to
            # count events/drops and surface causality, admissibility
            # and same-instant errors exactly as the acyclic path would.
            for gid, name, incoming, internal, external, table in gates:
                for eid in internal:
                    eval_edge(eid, strict=True, scc_internal=True)
                check_same_instant(name, incoming)

        if self.order is not None:
            for nid in self.order:
                eval_node(nid)
        else:
            for component in self.components:
                nid = component[0]
                if len(component) == 1 and not any(
                    topo.edge_target_id[eid] == nid
                    for eid in topo.out_edge_ids[nid]
                ):
                    eval_node(nid)
                else:
                    run_component(component)

        over = event_counts > self.max_events
        if over.any():
            raise SimulationError(
                f"exceeded max_events={self.max_events}; "
                "the circuit may be oscillating (raise the limit or shorten end_time)"
            )

        # --- assemble per-scenario executions ----------------------------- #
        value_patterns: Dict[tuple, List[int]] = {}
        # Bulk Transition construction: __new__ + object.__setattr__ skips
        # the frozen-dataclass __init__/__post_init__ layers (the values
        # are 0/1 by construction); ~30% cheaper over the ~10^6 transitions
        # a large sweep assembles.
        transition_new = Transition.__new__
        set_attr = object.__setattr__

        def row_signal(matrix: _SignalMatrix, s: int) -> Signal:
            count = int(matrix.counts[s])
            if count == 0:
                return Signal._trusted(matrix.initial, ())
            key = (matrix.initial, count)
            pattern = value_patterns.get(key)
            if pattern is None:
                pattern = [(matrix.initial ^ ((i + 1) & 1)) for i in range(count)]
                value_patterns[key] = pattern
            row_times = matrix.times[s, :count]
            row = row_times.tolist()
            transitions = []
            append = transitions.append
            for t, v in zip(row, pattern):
                transition = transition_new(Transition)
                set_attr(transition, "time", t)
                set_attr(transition, "value", v)
                append(transition)
            signal = Signal._trusted(matrix.initial, transitions)
            # Prefill the packed-times cache straight from the result
            # matrix (the same float64 bits tolist() just expanded):
            # pickling to the parent process and checkpoint encoding
            # then skip re-packing a million transitions one by one.
            signal._packed_times = row_times.tobytes()
            return signal

        runs: List[object] = []
        for s, scenario in enumerate(scenarios):
            node_signals: Dict[str, Signal] = {}
            for pid, pname in zip(topo.input_port_ids, topo.input_ports):
                node_signals[pname] = Signal._trusted(
                    self.port_initials[pname], port_slices[pname][s]
                )
            for gid, gname in zip(topo.gate_ids, topo.gate_names):
                node_signals[gname] = row_signal(node_matrices[gid], s)
            edge_signals: Dict[str, Signal] = {}
            for eid, ename in enumerate(topo.edge_names):
                edge_signals[ename] = row_signal(edge_matrices[eid], s)
            for oname in topo.output_ports:
                node_signals[oname] = edge_signals[topo.output_driver[oname].name]
            output_signals = {
                oname: node_signals[oname] for oname in topo.output_ports
            }
            runs.append(
                RunResult(
                    scenario=scenario,
                    execution=Execution(
                        circuit=topo.circuit,
                        node_signals=node_signals,
                        edge_signals=edge_signals,
                        output_signals=output_signals,
                        end_time=scenario.end_time,
                        event_count=int(event_counts[s]),
                        dropped_transitions=int(dropped_counts[s]),
                    ),
                    seconds=0.0,
                )
            )
        elapsed = _time.perf_counter() - start
        per_run_seconds = elapsed / max(1, S)
        for run in runs:
            run.seconds = per_run_seconds
        return runs


def compile_sweep(
    topology,
    scenarios: Sequence[object],
    *,
    on_causality: str = "error",
    max_events: int = 1_000_000,
) -> VectorProgram:
    """Compile a sweep onto the vector backend.

    Raises :class:`VectorUnsupportedError` (carrying the full
    :class:`VectorCapability` report) when the circuit or any scenario's
    channels cannot be expressed; use :func:`vector_capability` for a
    non-raising probe.
    """
    if on_causality not in ("error", "drop"):
        raise ValueError("on_causality must be 'error' or 'drop'")
    topo = (
        topology
        if isinstance(topology, CircuitTopology)
        else CircuitTopology(topology)
    )
    report, program = _compile(topo, scenarios, on_causality, int(max_events))
    if program is None:
        raise VectorUnsupportedError(report)
    return program


def vector_capability(topology, scenarios: Sequence[object]) -> VectorCapability:
    """Probe whether a sweep can run on the vector backend, without raising.

    Returns a :class:`VectorCapability` whose ``reasons`` list every
    obstacle found (unsupported channel or adversary types,
    zero-delay-only cycles, settle-instant glitches through zero-delay
    edges, scenario-dependent structure); an empty list means
    :func:`compile_sweep` will succeed.
    Sweeps that are invalid for *every* backend (missing or unknown input
    ports, overrides for unknown edges -- the checks ``Engine.run`` would
    fail too) are reported as unsupported with an ``invalid sweep:``
    reason instead of raising.
    """
    topo = (
        topology
        if isinstance(topology, CircuitTopology)
        else CircuitTopology(topology)
    )
    try:
        report, _ = _compile(topo, scenarios, "error", 1_000_000)
    except SimulationError as exc:
        return VectorCapability(False, (f"invalid sweep: {exc}",))
    return report


def _predrawn_channels(
    topo: CircuitTopology, scenarios: Sequence[object], seed=None
) -> Dict[Tuple[int, str], object]:
    """Seeded replacements for unseeded-RandomAdversary channels.

    Scans every (scenario, edge) slot in a fixed order and, for each one
    whose effective channel carries an unseeded
    :class:`~repro.core.adversary.RandomAdversary`, builds a
    ``with_adversary`` copy holding a pre-drawn integer seed.  Keys are
    ``(scenario_index, edge_name)``.  With ``seed=None`` the draws come
    from fresh OS entropy -- exactly the fresh-entropy-per-run semantics
    the unseeded adversary has on the scalar engine; a given ``seed``
    reproduces the same assignment, which is what lets both backends be
    run on identical draws.
    """
    from ..core.adversary import RandomAdversary
    from ..core.eta_channel import EtaInvolutionChannel

    pending: List[Tuple[int, str, object]] = []
    for s, scenario in enumerate(scenarios):
        overrides = scenario.channels or {}
        for eid, ename in enumerate(topo.edge_names):
            channel = overrides.get(ename, topo.edge_list[eid].channel)
            if (
                type(channel) is EtaInvolutionChannel
                and type(channel.adversary) is RandomAdversary
                and channel.adversary._seed is None
            ):
                pending.append((s, ename, channel))
    if not pending:
        return {}
    seeds = np.random.SeedSequence(seed).generate_state(
        len(pending), dtype=np.uint64
    )
    replacements: Dict[Tuple[int, str], object] = {}
    for (s, ename, channel), drawn in zip(pending, seeds):
        adversary = channel.adversary
        replacements[(s, ename)] = channel.with_adversary(
            RandomAdversary(
                seed=int(drawn),
                distribution=adversary.distribution,
                sigma_fraction=adversary.sigma_fraction,
            )
        )
    return replacements


def predraw_random_adversaries(
    topology, scenarios: Sequence[object], *, seed=None
) -> List[object]:
    """Materialise every unseeded RandomAdversary as a seeded copy.

    Returns a new scenario list in which each (scenario, edge) slot whose
    channel draws fresh entropy per run is overridden by a copy carrying
    a pre-drawn seed; scenarios with no such channels are returned as-is.
    Running *both* backends on the returned scenarios makes their draws
    identical -- the differential suite uses this to compare scalar and
    vector bit-for-bit on otherwise-unreplayable sweeps.  ``compile_sweep``
    performs the same materialisation internally (with fresh entropy), so
    plain ``run_many(backend="vector")`` needs no preparation.
    """
    from dataclasses import replace

    topo = (
        topology
        if isinstance(topology, CircuitTopology)
        else CircuitTopology(topology)
    )
    scenarios = list(scenarios)
    replacements = _predrawn_channels(topo, scenarios, seed)
    if not replacements:
        return scenarios
    out: List[object] = []
    for s, scenario in enumerate(scenarios):
        news = {
            ename: channel
            for (si, ename), channel in replacements.items()
            if si == s
        }
        if not news:
            out.append(scenario)
            continue
        channels = dict(scenario.channels or {})
        channels.update(news)
        out.append(replace(scenario, channels=channels, fingerprint=None))
    return out


def _compile(
    topo: CircuitTopology,
    scenarios: Sequence[object],
    on_causality: str,
    max_events: int,
) -> Tuple[VectorCapability, Optional[VectorProgram]]:
    """Check capability via the shared analyzer, then build the program.

    All obstacle detection lives in
    :func:`repro.engine.capability.analyze_sweep` (shared with the static
    linter's fallback prediction); this function only materialises the
    per-edge numpy programs once the analysis comes back clean.  Unseeded
    RandomAdversary channels are replaced here by seeded copies with
    pre-drawn per-(scenario, edge) seeds -- fresh entropy per compile,
    mirroring the scalar engine's fresh draws per run.  The scenario
    objects themselves are left untouched (results keep their identity).
    """
    scenarios = list(scenarios)
    analysis = analyze_sweep(topo, scenarios)
    if analysis.reasons:
        return analysis.capability(), None

    predrawn = _predrawn_channels(topo, scenarios)
    edge_programs: Dict[int, _EdgeProgram] = {}
    fn_cache: Dict = {}
    for eid, ename in enumerate(topo.edge_names):
        edge = topo.edge_list[eid]
        run_channels = [
            predrawn.get((s, ename))
            or (scenario.channels or {}).get(ename, edge.channel)
            for s, scenario in enumerate(scenarios)
        ]
        program = _compile_edge(
            analysis.edge_facts[eid], ename, run_channels, fn_cache
        )
        program.settle_sensitive = (
            program.target_is_gate
            and topo.edge_target_id[eid] in analysis.settle_inconsistent
        )
        edge_programs[eid] = program

    program = VectorProgram(
        topology=topo,
        scenarios=scenarios,
        on_causality=on_causality,
        max_events=max_events,
        order=analysis.order,
        components=analysis.components,
        edge_programs=edge_programs,
        port_initials=analysis.port_initials,
    )
    return VectorCapability(True), program


def run_many_vector(
    topology,
    scenarios: Sequence[object],
    *,
    on_causality: str = "error",
    max_events: int = 1_000_000,
) -> List[object]:
    """Compile and run a sweep on the vector backend in one call.

    Returns the per-scenario :class:`~repro.engine.sweep.RunResult` list;
    raises :class:`VectorUnsupportedError` when the sweep cannot be
    compiled -- or when execution discovers a same-instant delivery whose
    engine batch ordering cannot be replayed (callers wanting automatic
    fallback should use :func:`repro.engine.sweep.run_many` with
    ``backend="vector"``).
    """
    program = compile_sweep(
        topology, scenarios, on_causality=on_causality, max_events=max_events
    )
    return program.run()
