"""Static diagnostics for specs, netlists, and experiment definitions.

``repro lint`` validates a document *before* anything runs: structural
netlist defects (dangling endpoints, duplicate names, pin conflicts),
unknown or out-of-domain spec parameters, zero-delay cycles, determinism
hazards (unseeded random adversaries), and -- via the same
:func:`repro.engine.capability.analyze_sweep` analyzer the vector
compiler uses -- a static prediction of exactly which sweeps would fall
back to the scalar engine and why.

Three entry points:

* :func:`repro.api.lint` / :func:`lint` -- lint any spec-like object or
  JSON file, returning a :class:`LintReport` of :class:`Diagnostic`
  records,
* the ``repro lint`` CLI subcommand -- text or ``--json`` output with
  exit codes 0 (clean), 1 (error findings), 2 (unreadable input),
* the ``validate=True`` hook on ``api.simulate`` / ``api.sweep`` /
  ``api.experiment`` -- raises :class:`LintError` before running when
  the input has error-severity findings.

The rule catalogue (stable ``REPnnn`` codes) lives in
:mod:`repro.lint.rules` and is rendered in ``docs/linting.md``.
"""

from .diagnostics import Diagnostic, LintError, LintReport, Severity
from .rules import RULES, CircuitContext, ExperimentContext, Rule, get_rule, iter_rules
from .runner import lint, lint_path

__all__ = [
    "Diagnostic",
    "Severity",
    "LintReport",
    "LintError",
    "Rule",
    "RULES",
    "CircuitContext",
    "ExperimentContext",
    "iter_rules",
    "get_rule",
    "lint",
    "lint_path",
]
