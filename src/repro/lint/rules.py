"""The ``repro lint`` rule catalogue.

Every rule is registered with a stable code (``REPnnn``), a default
:class:`~repro.lint.diagnostics.Severity`, and a one-line summary; the
check function receives a :class:`CircuitContext` or
:class:`ExperimentContext` and yields ``(json_path, message)`` pairs.
Rules are pure and defensive: they must never raise on malformed input
(that is precisely the input they exist for), so every structural
access tolerates missing or mistyped fields and leaves reporting those
to the rule that owns them.

Code blocks
-----------

* ``REP0xx`` -- netlist structure (nodes, edges, pins, fan-in/out),
* ``REP1xx`` -- spec kinds and parameter domains (channels, delays,
  adversaries, involution pairs, causality modes),
* ``REP2xx`` -- graph dynamics (zero-delay cycles, feedback loops),
* ``REP3xx`` -- determinism hazards (unseeded random adversaries),
* ``REP4xx`` -- backend capability prediction (the shared
  :func:`repro.engine.capability.analyze_sweep` analyzer),
* ``REP5xx`` -- experiment specs (kinds, parameter names).

The rendered catalogue with examples lives in ``docs/linting.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .diagnostics import Severity

__all__ = [
    "Rule",
    "RULES",
    "CircuitContext",
    "ExperimentContext",
    "iter_rules",
    "get_rule",
]

#: Yields of a check function: ``(json_path, message)`` pairs.
Finding = Tuple[str, str]

#: The built-in causality policies of the engine (``Engine.run``'s
#: ``on_causality``); anything else fails at run time.
CAUSALITY_MODES = ("error", "drop")


# --------------------------------------------------------------------------- #
# Contexts
# --------------------------------------------------------------------------- #


class CircuitContext:
    """One circuit/netlist document under lint, with derived views.

    ``doc`` is the document as given; ``base`` is the JSON-path prefix of
    the circuit spec inside it (``""`` for a bare circuit-spec dict,
    ``"/circuit"`` for a netlist envelope).  The derived node/edge tables
    are built defensively once and shared by every rule.
    """

    def __init__(
        self,
        doc: Mapping[str, Any],
        base: str,
        circuit: Mapping[str, Any],
        inputs: Optional[Mapping[str, Any]] = None,
        end_time: Optional[float] = None,
        metadata: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.doc = doc
        self.base = base
        self.circuit = circuit
        self.inputs = dict(inputs or {})
        self.end_time = end_time
        self.metadata = dict(metadata or {})
        raw_nodes = circuit.get("nodes")
        raw_edges = circuit.get("edges")
        #: ``(index, node-dict)`` for every well-typed node entry.
        self.nodes: List[Tuple[int, Mapping[str, Any]]] = [
            (i, n)
            for i, n in enumerate(raw_nodes if isinstance(raw_nodes, list) else [])
            if isinstance(n, Mapping)
        ]
        #: ``(index, edge-dict)`` for every well-typed edge entry.
        self.edges: List[Tuple[int, Mapping[str, Any]]] = [
            (i, e)
            for i, e in enumerate(raw_edges if isinstance(raw_edges, list) else [])
            if isinstance(e, Mapping)
        ]
        #: First declaration index of each node name.
        self.node_index: Dict[str, int] = {}
        #: Node kind by name (first declaration wins, like ``Circuit``).
        self.node_kind: Dict[str, str] = {}
        for i, node in self.nodes:
            name = node.get("name")
            if isinstance(name, str) and name not in self.node_index:
                self.node_index[name] = i
                kind = node.get("kind")
                self.node_kind[name] = kind if isinstance(kind, str) else "?"
        self.in_edges: Dict[str, List[Tuple[int, Mapping[str, Any]]]] = {}
        self.out_edges: Dict[str, List[Tuple[int, Mapping[str, Any]]]] = {}
        for i, edge in self.edges:
            target = edge.get("target")
            source = edge.get("source")
            if isinstance(target, str):
                self.in_edges.setdefault(target, []).append((i, edge))
            if isinstance(source, str):
                self.out_edges.setdefault(source, []).append((i, edge))

    def path(self, suffix: str) -> str:
        """Join ``suffix`` (circuit-relative) onto the circuit's base path."""
        return f"{self.base}{suffix}"

    def gate_arity(self, node: Mapping[str, Any]) -> Optional[int]:
        """Arity of a gate node's type, or ``None`` when it cannot be known."""
        from ..circuits.gates import GATE_LIBRARY

        gtype = node.get("type")
        if isinstance(gtype, str):
            gate = GATE_LIBRARY.get(gtype)
            return None if gate is None else gate.arity
        if isinstance(gtype, Mapping):
            arity = gtype.get("arity")
            return arity if isinstance(arity, int) else None
        return None

    def edge_label(self, index: int, edge: Mapping[str, Any]) -> str:
        """Human-readable identifier of an edge (name or positional)."""
        name = edge.get("name")
        if isinstance(name, str):
            return repr(name)
        return f"#{index}"

    def channels(self) -> Iterator[Tuple[str, Mapping[str, Any]]]:
        """Walk every channel-spec dict, recursing into serial stages.

        Yields ``(json_path, channel_dict)``, parents before stages.
        """
        for i, edge in self.edges:
            channel = edge.get("channel")
            if isinstance(channel, Mapping):
                yield from self._walk_channel(
                    self.path(f"/edges/{i}/channel"), channel
                )

    def _walk_channel(
        self, path: str, channel: Mapping[str, Any]
    ) -> Iterator[Tuple[str, Mapping[str, Any]]]:
        yield path, channel
        if channel.get("kind") == "serial":
            stages = _params(channel).get("stages")
            if isinstance(stages, list):
                for j, stage in enumerate(stages):
                    if isinstance(stage, Mapping):
                        yield from self._walk_channel(f"{path}/stages/{j}", stage)


@dataclass
class ExperimentContext:
    """One experiment-spec document under lint."""

    doc: Mapping[str, Any]
    kind: Any = None
    params: Mapping[str, Any] = field(default_factory=dict)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Rule:
    """One registered lint rule.

    ``check`` receives the scope's context object and yields
    ``(json_path, message)`` pairs; the runner stamps them into
    :class:`~repro.lint.diagnostics.Diagnostic` records with this rule's
    code and severity.
    """

    code: str
    name: str
    severity: Severity
    summary: str
    scope: str
    check: Callable[[Any], Iterator[Finding]]
    doc: str = ""


#: Every registered rule by code.
RULES: Dict[str, Rule] = {}


def _rule(
    code: str, name: str, severity: Severity, scope: str, summary: str
) -> Callable[[Callable[[Any], Iterator[Finding]]], Callable[[Any], Iterator[Finding]]]:
    def register(check: Callable[[Any], Iterator[Finding]]) -> Callable[[Any], Iterator[Finding]]:
        if code in RULES:  # pragma: no cover - registration-time guard
            raise ValueError(f"lint rule code {code} is already registered")
        RULES[code] = Rule(
            code=code,
            name=name,
            severity=severity,
            summary=summary,
            scope=scope,
            check=check,
            doc=(check.__doc__ or "").strip(),
        )
        return check

    return register


def iter_rules() -> List[Rule]:
    """All registered rules in code order."""
    return [RULES[code] for code in sorted(RULES)]


def get_rule(code: str) -> Rule:
    """Look up a rule by its code; raises ``KeyError`` for unknown codes."""
    return RULES[code]


def _params(channel: Mapping[str, Any]) -> Mapping[str, Any]:
    """The parameter view of a spec dict.

    Spec dicts are *flat* -- ``{"kind": "pure", "delay": 0.5}``, per
    :meth:`repro.specs.Spec.to_dict` -- so the dict itself doubles as its
    parameter mapping (no caller looks up ``"kind"`` through this)."""
    return channel


def _num(value: Any) -> Optional[float]:
    """Coerce a JSON number, or ``None`` (bools excluded: JSON booleans
    in numeric fields are a type error REP105 reports via the builder)."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return None


# --------------------------------------------------------------------------- #
# REP0xx -- netlist structure
# --------------------------------------------------------------------------- #


@_rule(
    "REP001",
    "duplicate-node-name",
    Severity.ERROR,
    "circuit",
    "Two nodes declare the same name.",
)
def _check_duplicate_node_name(ctx: CircuitContext) -> Iterator[Finding]:
    """Node names are the circuit's namespace: edges address sources and
    targets by name, so a duplicate silently shadows the first
    declaration when the circuit is built."""
    for i, node in ctx.nodes:
        name = node.get("name")
        if isinstance(name, str) and ctx.node_index.get(name) != i:
            first = ctx.node_index[name]
            yield (
                ctx.path(f"/nodes/{i}/name"),
                f"duplicate node name {name!r} "
                f"(first declared at {ctx.path(f'/nodes/{first}')})",
            )


@_rule(
    "REP002",
    "unknown-edge-endpoint",
    Severity.ERROR,
    "circuit",
    "An edge references a node that is not declared.",
)
def _check_unknown_edge_endpoint(ctx: CircuitContext) -> Iterator[Finding]:
    """A dangling endpoint means the edge cannot be wired at build time;
    ``Circuit.connect`` would fail with a lookup error."""
    for i, edge in ctx.edges:
        label = ctx.edge_label(i, edge)
        for role in ("source", "target"):
            endpoint = edge.get(role)
            if not isinstance(endpoint, str):
                yield (
                    ctx.path(f"/edges/{i}/{role}"),
                    f"edge {label} has no {role} node",
                )
            elif endpoint not in ctx.node_index:
                yield (
                    ctx.path(f"/edges/{i}/{role}"),
                    f"edge {label} {role} {endpoint!r} is not a declared node",
                )


@_rule(
    "REP003",
    "invalid-edge-endpoint",
    Severity.ERROR,
    "circuit",
    "An edge drives from an output port or into an input port.",
)
def _check_invalid_edge_endpoint(ctx: CircuitContext) -> Iterator[Finding]:
    """Input ports are pure sources and output ports pure sinks in the
    paper's circuit model; an edge in the wrong direction has no
    semantics and the builder rejects it."""
    for i, edge in ctx.edges:
        label = ctx.edge_label(i, edge)
        source = edge.get("source")
        target = edge.get("target")
        if isinstance(source, str) and ctx.node_kind.get(source) == "output":
            yield (
                ctx.path(f"/edges/{i}/source"),
                f"edge {label} drives from output port {source!r} "
                "(output ports are sinks)",
            )
        if isinstance(target, str) and ctx.node_kind.get(target) == "input":
            yield (
                ctx.path(f"/edges/{i}/target"),
                f"edge {label} drives into input port {target!r} "
                "(input ports are sources)",
            )


@_rule(
    "REP004",
    "undriven-node",
    Severity.ERROR,
    "circuit",
    "A gate pin or output port has no incoming edge.",
)
def _check_undriven_node(ctx: CircuitContext) -> Iterator[Finding]:
    """Every gate pin and every output port needs exactly one driver;
    an undriven one makes the circuit unrunnable (``Circuit.validate``
    raises at run time -- the linter reports it statically)."""
    for i, node in ctx.nodes:
        name = node.get("name")
        if not isinstance(name, str) or ctx.node_index.get(name) != i:
            continue
        kind = node.get("kind")
        incoming = ctx.in_edges.get(name, [])
        if kind == "output" and not incoming:
            yield (
                ctx.path(f"/nodes/{i}"),
                f"output port {name!r} is never driven",
            )
        elif kind == "gate":
            arity = ctx.gate_arity(node)
            if arity is None:
                continue
            driven = {
                edge.get("pin", 0)
                for _, edge in incoming
                if isinstance(edge.get("pin", 0), int)
            }
            for pin in range(arity):
                if pin not in driven:
                    yield (
                        ctx.path(f"/nodes/{i}"),
                        f"gate {name!r} input pin {pin} is never driven",
                    )


@_rule(
    "REP005",
    "duplicate-edge-name",
    Severity.ERROR,
    "circuit",
    "Two edges declare the same name.",
)
def _check_duplicate_edge_name(ctx: CircuitContext) -> Iterator[Finding]:
    """Edge names key per-scenario channel overrides and sweep reports;
    a duplicate makes overrides ambiguous and the builder rejects it."""
    seen: Dict[str, int] = {}
    for i, edge in ctx.edges:
        name = edge.get("name")
        if not isinstance(name, str):
            continue
        if name in seen:
            yield (
                ctx.path(f"/edges/{i}/name"),
                f"duplicate edge name {name!r} "
                f"(first declared at {ctx.path(f'/edges/{seen[name]}')})",
            )
        else:
            seen[name] = i


@_rule(
    "REP006",
    "conflicting-drivers",
    Severity.ERROR,
    "circuit",
    "Two edges drive the same gate pin or output port, or a pin is out of range.",
)
def _check_conflicting_drivers(ctx: CircuitContext) -> Iterator[Finding]:
    """Gate pins and output ports have fan-in exactly one; a second
    driver (or a pin outside the gate's arity) cannot be wired."""
    for name, incoming in ctx.in_edges.items():
        kind = ctx.node_kind.get(name)
        if kind == "output" and len(incoming) > 1:
            first_i, first = incoming[0]
            for i, edge in incoming[1:]:
                yield (
                    ctx.path(f"/edges/{i}/target"),
                    f"output port {name!r} is driven by both edge "
                    f"{ctx.edge_label(first_i, first)} and edge "
                    f"{ctx.edge_label(i, edge)} (fan-in must be 1)",
                )
        elif kind == "gate":
            node = dict(ctx.nodes)[ctx.node_index[name]]
            arity = ctx.gate_arity(node)
            pins: Dict[int, Tuple[int, Mapping[str, Any]]] = {}
            for i, edge in incoming:
                pin = edge.get("pin", 0)
                if not isinstance(pin, int) or isinstance(pin, bool):
                    yield (
                        ctx.path(f"/edges/{i}/pin"),
                        f"edge {ctx.edge_label(i, edge)} pin {pin!r} "
                        "is not an integer",
                    )
                    continue
                if pin < 0 or (arity is not None and pin >= arity):
                    bound = "" if arity is None else f" (arity {arity})"
                    yield (
                        ctx.path(f"/edges/{i}/pin"),
                        f"edge {ctx.edge_label(i, edge)} pin {pin} is out of "
                        f"range for gate {name!r}{bound}",
                    )
                    continue
                if pin in pins:
                    first_i, first = pins[pin]
                    yield (
                        ctx.path(f"/edges/{i}/pin"),
                        f"edge {ctx.edge_label(i, edge)} drives gate {name!r} "
                        f"pin {pin} already driven by edge "
                        f"{ctx.edge_label(first_i, first)}",
                    )
                else:
                    pins[pin] = (i, edge)


@_rule(
    "REP007",
    "dangling-node",
    Severity.WARNING,
    "circuit",
    "An input port or gate output drives nothing.",
)
def _check_dangling_node(ctx: CircuitContext) -> Iterator[Finding]:
    """A node whose output fans out to nothing still simulates but is
    dead weight -- usually a typo in some edge's ``source``."""
    for i, node in ctx.nodes:
        name = node.get("name")
        if not isinstance(name, str) or ctx.node_index.get(name) != i:
            continue
        kind = node.get("kind")
        if kind in ("input", "gate") and not ctx.out_edges.get(name):
            noun = "input port" if kind == "input" else "gate"
            yield (
                ctx.path(f"/nodes/{i}"),
                f"{noun} {name!r} drives nothing",
            )


@_rule(
    "REP008",
    "invalid-node",
    Severity.ERROR,
    "circuit",
    "A node has an unknown kind, no name, or an out-of-domain initial value.",
)
def _check_invalid_node(ctx: CircuitContext) -> Iterator[Finding]:
    """Nodes must be ``input``/``output``/``gate`` dicts with a name;
    initial values live in the binary domain {0, 1}."""
    raw_nodes = ctx.circuit.get("nodes")
    for i, node in enumerate(raw_nodes if isinstance(raw_nodes, list) else []):
        if not isinstance(node, Mapping):
            yield (
                ctx.path(f"/nodes/{i}"),
                f"node entry is not an object: {node!r}",
            )
            continue
        kind = node.get("kind")
        if kind not in ("input", "output", "gate"):
            yield (
                ctx.path(f"/nodes/{i}/kind"),
                f"unknown node kind {kind!r} (expected input, output, or gate)",
            )
        if not isinstance(node.get("name"), str):
            yield (ctx.path(f"/nodes/{i}"), "node has no name")
        if kind == "gate" and "type" not in node:
            yield (
                ctx.path(f"/nodes/{i}"),
                f"gate {node.get('name')!r} has no type",
            )
        if kind in ("input", "gate"):
            initial = node.get("initial_value", 0)
            if initial not in (0, 1) or isinstance(initial, bool):
                yield (
                    ctx.path(f"/nodes/{i}/initial_value"),
                    f"initial value {initial!r} is outside the binary "
                    "domain {0, 1}",
                )


# --------------------------------------------------------------------------- #
# REP1xx -- spec kinds and parameter domains
# --------------------------------------------------------------------------- #


@_rule(
    "REP101",
    "unknown-channel-kind",
    Severity.ERROR,
    "circuit",
    "A channel spec uses an unregistered kind.",
)
def _check_unknown_channel_kind(ctx: CircuitContext) -> Iterator[Finding]:
    """Channel kinds must be registered (built-in or via
    ``repro.specs.register_channel_kind``); an unknown kind fails at
    build time.  Serial stages are checked recursively."""
    from ..specs import channel_kinds

    known = set(channel_kinds())
    for i, edge in ctx.edges:
        if not isinstance(edge.get("channel"), Mapping):
            yield (
                ctx.path(f"/edges/{i}"),
                f"edge {ctx.edge_label(i, edge)} has no channel spec",
            )
    for path, channel in ctx.channels():
        kind = channel.get("kind")
        if not isinstance(kind, str) or kind not in known:
            yield (
                f"{path}/kind",
                f"unknown channel kind {kind!r}; registered: {sorted(known)}",
            )


@_rule(
    "REP102",
    "unknown-gate-type",
    Severity.ERROR,
    "circuit",
    "A gate references an unknown library gate or a malformed custom type.",
)
def _check_unknown_gate_type(ctx: CircuitContext) -> Iterator[Finding]:
    """Gate types are either a library name (``repro.circuits.gates``)
    or an inline ``{name, arity, table}`` truth table."""
    from ..circuits.gates import GATE_LIBRARY

    for i, node in ctx.nodes:
        if node.get("kind") != "gate":
            continue
        gtype = node.get("type")
        if isinstance(gtype, str):
            if gtype not in GATE_LIBRARY:
                yield (
                    ctx.path(f"/nodes/{i}/type"),
                    f"unknown library gate {gtype!r}; "
                    f"known: {sorted(GATE_LIBRARY)}",
                )
        elif isinstance(gtype, Mapping):
            missing = [k for k in ("name", "arity", "table") if k not in gtype]
            if missing:
                yield (
                    ctx.path(f"/nodes/{i}/type"),
                    f"custom gate type is missing {missing} "
                    "(needs name, arity, table)",
                )
        elif gtype is not None:
            yield (
                ctx.path(f"/nodes/{i}/type"),
                f"gate type must be a library name or a truth-table object, "
                f"got {gtype!r}",
            )


@_rule(
    "REP103",
    "unknown-adversary-kind",
    Severity.ERROR,
    "circuit",
    "An eta channel's adversary uses an unregistered kind.",
)
def _check_unknown_adversary_kind(ctx: CircuitContext) -> Iterator[Finding]:
    """Adversary strategies must be registered (built-in or via
    ``repro.specs.register_adversary_kind``)."""
    from ..specs import adversary_kinds

    known = set(adversary_kinds())
    for path, channel in ctx.channels():
        if channel.get("kind") != "eta_involution":
            continue
        adversary = _params(channel).get("adversary")
        if adversary is None:
            continue  # defaults to the zero adversary
        if not isinstance(adversary, Mapping):
            yield (
                f"{path}/adversary",
                f"adversary spec is not an object: {adversary!r}",
            )
            continue
        kind = adversary.get("kind")
        if not isinstance(kind, str) or kind not in known:
            yield (
                f"{path}/adversary/kind",
                f"unknown adversary kind {kind!r}; registered: {sorted(known)}",
            )


@_rule(
    "REP104",
    "unknown-delay-kind",
    Severity.ERROR,
    "circuit",
    "An involution pair or nested delay function uses an unregistered kind.",
)
def _check_unknown_delay_kind(ctx: CircuitContext) -> Iterator[Finding]:
    """Involution pairs are ``{"kind": "exp"}`` closed forms or explicit
    ``{"kind": "pair", "up": ..., "down": ...}`` dicts whose up/down
    delay functions must use registered delay kinds."""
    from ..specs import delay_kinds

    known = set(delay_kinds())
    for path, channel in ctx.channels():
        if channel.get("kind") not in ("involution", "eta_involution"):
            continue
        pair = _params(channel).get("pair")
        if not isinstance(pair, Mapping):
            continue  # missing pair is a build failure (REP105)
        kind = pair.get("kind")
        if kind == "exp":
            continue
        if kind != "pair":
            yield (
                f"{path}/pair/kind",
                f"unknown involution-pair kind {kind!r} (expected exp or pair)",
            )
            continue
        for side in ("up", "down"):
            delay = pair.get(side)
            if not isinstance(delay, Mapping):
                continue
            dkind = delay.get("kind")
            if not isinstance(dkind, str) or dkind not in known:
                yield (
                    f"{path}/pair/{side}/kind",
                    f"unknown delay kind {dkind!r}; registered: {sorted(known)}",
                )


@_rule(
    "REP105",
    "invalid-channel-params",
    Severity.ERROR,
    "circuit",
    "A channel spec with known kinds fails to build.",
)
def _check_invalid_channel_params(ctx: CircuitContext) -> Iterator[Finding]:
    """The authoritative parameter check is the registered builder
    itself: this rule attempts ``ChannelSpec.from_dict(...).build()`` per
    edge and reports the failure.  Channels whose kinds are unknown are
    skipped (REP101/REP103/REP104 already own those)."""
    from ..specs import ChannelSpec, SpecError, adversary_kinds, channel_kinds, delay_kinds

    known_channels = set(channel_kinds())
    known_adversaries = set(adversary_kinds())
    known_delays = set(delay_kinds())

    def kinds_known(channel: Mapping[str, Any]) -> bool:
        kind = channel.get("kind")
        if kind not in known_channels:
            return False
        params = _params(channel)
        if kind == "eta_involution":
            adversary = params.get("adversary")
            if isinstance(adversary, Mapping) and (
                adversary.get("kind") not in known_adversaries
            ):
                return False
        if kind in ("involution", "eta_involution"):
            pair = params.get("pair")
            if isinstance(pair, Mapping):
                pkind = pair.get("kind")
                if pkind not in ("exp", "pair"):
                    return False
                if pkind == "pair":
                    for side in ("up", "down"):
                        delay = pair.get(side)
                        if isinstance(delay, Mapping) and (
                            delay.get("kind") not in known_delays
                        ):
                            return False
        if kind == "serial":
            stages = params.get("stages")
            if isinstance(stages, list):
                return all(
                    kinds_known(s) for s in stages if isinstance(s, Mapping)
                )
        return True

    for i, edge in ctx.edges:
        channel = edge.get("channel")
        if not isinstance(channel, Mapping) or not kinds_known(channel):
            continue
        try:
            ChannelSpec.from_dict(channel).build()
        except KeyError as exc:
            yield (
                ctx.path(f"/edges/{i}/channel"),
                f"channel is missing required parameter {exc}",
            )
        except (SpecError, TypeError, ValueError) as exc:
            yield (
                ctx.path(f"/edges/{i}/channel"),
                f"channel does not build: {exc}",
            )


@_rule(
    "REP106",
    "out-of-domain-params",
    Severity.ERROR,
    "circuit",
    "A channel parameter is outside its mathematical domain.",
)
def _check_out_of_domain_params(ctx: CircuitContext) -> Iterator[Finding]:
    """Delays must be non-negative, time constants strictly positive,
    thresholds inside (0, 1), and eta bounds non-negative -- the domains
    under which the paper's involution results hold."""
    for path, channel in ctx.channels():
        kind = channel.get("kind")
        params = _params(channel)
        if kind == "pure":
            for key in ("delay", "falling_delay"):
                value = _num(params.get(key))
                if value is not None and value < 0:
                    yield (f"{path}/{key}", f"negative delay {value}")
        elif kind == "inertial":
            value = _num(params.get("delay"))
            if value is not None and value < 0:
                yield (f"{path}/delay", f"negative delay {value}")
            window = _num(params.get("window"))
            if window is not None and window < 0:
                yield (
                    f"{path}/window",
                    f"negative rejection window {window}",
                )
        elif kind == "ddm":
            nominal = _num(params.get("delta_nominal"))
            if nominal is not None and nominal < 0:
                yield (
                    f"{path}/delta_nominal",
                    f"negative nominal delay {nominal}",
                )
            tau = _num(params.get("tau_deg"))
            if tau is not None and tau <= 0:
                yield (
                    f"{path}/tau_deg",
                    f"degradation time constant {tau} must be positive",
                )
        elif kind in ("involution", "eta_involution"):
            pair = params.get("pair")
            if isinstance(pair, Mapping) and pair.get("kind") == "exp":
                tau = _num(pair.get("tau"))
                if tau is not None and tau <= 0:
                    yield (
                        f"{path}/pair/tau",
                        f"time constant tau {tau} must be positive",
                    )
                t_p = _num(pair.get("t_p"))
                if t_p is not None and t_p <= 0:
                    yield (
                        f"{path}/pair/t_p",
                        f"pure delay t_p {t_p} must be positive",
                    )
                v_th = _num(pair.get("v_th", 0.5))
                if v_th is not None and not 0.0 < v_th < 1.0:
                    yield (
                        f"{path}/pair/v_th",
                        f"threshold v_th {v_th} must lie strictly "
                        "between 0 and 1",
                    )
            if kind == "eta_involution":
                eta = params.get("eta")
                if isinstance(eta, Mapping):
                    for key in ("eta_plus", "eta_minus"):
                        value = _num(eta.get(key))
                        if value is not None and value < 0:
                            yield (
                                f"{path}/eta/{key}",
                                f"negative eta bound {key}={value}",
                            )
                adversary = _params(channel).get("adversary")
                if isinstance(adversary, Mapping):
                    if adversary.get("kind") == "random":
                        sigma = _num(adversary.get("sigma_fraction"))
                        if sigma is not None and sigma < 0:
                            yield (
                                f"{path}/adversary/sigma_fraction",
                                f"negative sigma fraction {sigma}",
                            )
                        dist = adversary.get("distribution", "uniform")
                        if dist not in ("uniform", "normal"):
                            yield (
                                f"{path}/adversary/distribution",
                                f"unknown distribution {dist!r} "
                                "(expected uniform or normal)",
                            )
                    elif adversary.get("kind") == "sine":
                        period = _num(adversary.get("period"))
                        if period is not None and period <= 0:
                            yield (
                                f"{path}/adversary/period",
                                f"sine period {period} must be positive",
                            )


@_rule(
    "REP107",
    "non-involution-pair",
    Severity.WARNING,
    "circuit",
    "An explicit delay pair does not satisfy the involution property.",
)
def _check_non_involution_pair(ctx: CircuitContext) -> Iterator[Finding]:
    """The paper's results (Theorem 9 in particular) require
    ``-delta_up(-delta_down(T)) == T``; an explicit up/down pair that
    breaks it still simulates, but the model guarantees no longer
    apply."""
    from ..core.involution import InvolutionError, InvolutionPair
    from ..specs import DelaySpec, SpecError

    for path, channel in ctx.channels():
        if channel.get("kind") not in ("involution", "eta_involution"):
            continue
        pair = _params(channel).get("pair")
        if not isinstance(pair, Mapping) or pair.get("kind") != "pair":
            continue
        up_data = pair.get("up")
        down_data = pair.get("down")
        if not isinstance(up_data, Mapping) or not isinstance(down_data, Mapping):
            continue
        try:
            built = InvolutionPair(
                DelaySpec.from_dict(up_data).build(),
                DelaySpec.from_dict(down_data).build(),
                validate=False,
            )
            consistent = built.satisfies_involution()
        except (SpecError, InvolutionError, KeyError, TypeError, ValueError):
            continue  # unbuildable pairs belong to REP104/REP105
        if not consistent:
            yield (
                f"{path}/pair",
                "explicit delay pair does not satisfy the involution "
                "property (residual of -delta_up(-delta_down(T)) - T "
                "exceeds tolerance)",
            )


@_rule(
    "REP108",
    "invalid-causality-mode",
    Severity.ERROR,
    "circuit",
    "A causality policy is not one of the engine's modes.",
)
def _check_invalid_causality_mode(ctx: CircuitContext) -> Iterator[Finding]:
    """``on_causality`` selects how the engine treats causality-violating
    deliveries; only ``error`` and ``drop`` exist."""
    mode = ctx.metadata.get("on_causality")
    if mode is not None and mode not in CAUSALITY_MODES:
        yield (
            "/metadata/on_causality",
            f"invalid causality mode {mode!r} "
            f"(expected one of {list(CAUSALITY_MODES)})",
        )


@_rule(
    "REP109",
    "invalid-experiment-causality-mode",
    Severity.ERROR,
    "experiment",
    "An experiment parameter sets an unknown causality policy.",
)
def _check_experiment_causality_mode(ctx: ExperimentContext) -> Iterator[Finding]:
    """Same check as REP108, applied to experiment parameters."""
    mode = ctx.params.get("on_causality")
    if mode is not None and mode not in CAUSALITY_MODES:
        yield (
            "/on_causality",
            f"invalid causality mode {mode!r} "
            f"(expected one of {list(CAUSALITY_MODES)})",
        )


# --------------------------------------------------------------------------- #
# REP2xx -- graph dynamics
# --------------------------------------------------------------------------- #


def _is_zero_delay(channel: Mapping[str, Any]) -> bool:
    """True when a channel spec statically delivers with zero delay."""
    kind = channel.get("kind")
    params = _params(channel)
    if kind == "zero":
        return True
    if kind == "pure":
        delay = _num(params.get("delay"))
        falling = _num(params.get("falling_delay"))
        return delay == 0.0 and (falling is None or falling == 0.0)
    if kind == "inertial":
        return _num(params.get("delay")) == 0.0
    if kind == "serial":
        stages = params.get("stages")
        if isinstance(stages, list) and stages:
            return all(
                _is_zero_delay(s) for s in stages if isinstance(s, Mapping)
            )
    return False


def _find_cycle(
    ctx: CircuitContext, edges: Sequence[Tuple[int, Mapping[str, Any]]]
) -> Optional[List[str]]:
    """One cycle (as a node-name path) in the given edge subset, or None."""
    adjacency: Dict[str, List[str]] = {}
    for _, edge in edges:
        source = edge.get("source")
        target = edge.get("target")
        if (
            isinstance(source, str)
            and isinstance(target, str)
            and source in ctx.node_index
            and target in ctx.node_index
        ):
            adjacency.setdefault(source, []).append(target)
    state: Dict[str, int] = {}  # 1 = on stack, 2 = done
    stack: List[str] = []

    def visit(name: str) -> Optional[List[str]]:
        state[name] = 1
        stack.append(name)
        for nxt in adjacency.get(name, []):
            mark = state.get(nxt)
            if mark == 1:
                return stack[stack.index(nxt):] + [nxt]
            if mark is None:
                found = visit(nxt)
                if found is not None:
                    return found
        stack.pop()
        state[name] = 2
        return None

    for name in adjacency:
        if name not in state:
            found = visit(name)
            if found is not None:
                return found
    return None


@_rule(
    "REP201",
    "zero-delay-cycle",
    Severity.ERROR,
    "circuit",
    "A cycle consists entirely of zero-delay edges.",
)
def _check_zero_delay_cycle(ctx: CircuitContext) -> Iterator[Finding]:
    """An instantaneous loop schedules delta cycles forever at one
    timestamp: the simulation can never settle.  (The paper's model
    requires strictly positive loop delays for exactly this reason.)"""
    zero_edges = [
        (i, edge)
        for i, edge in ctx.edges
        if isinstance(edge.get("channel"), Mapping)
        and _is_zero_delay(edge["channel"])
    ]
    cycle = _find_cycle(ctx, zero_edges)
    if cycle is not None:
        yield (
            ctx.path("/edges"),
            "zero-delay cycle through nodes "
            + " -> ".join(repr(n) for n in cycle)
            + " (an instantaneous loop can never settle)",
        )


@_rule(
    "REP202",
    "feedback-loop",
    Severity.INFO,
    "circuit",
    "The circuit graph contains a feedback loop.",
)
def _check_feedback_loop(ctx: CircuitContext) -> Iterator[Finding]:
    """Storage loops are legal and essential (SR latches, the paper's
    SPF circuit).  Both engines handle them -- the event-driven scalar
    engine natively, the vector backend via its fixpoint lockstep
    schedule -- but the loop is worth surfacing: convergence cost grows
    with the number of feedback round-trips inside the time horizon."""
    cycle = _find_cycle(ctx, ctx.edges)
    if cycle is not None:
        yield (
            ctx.path("/edges"),
            "feedback loop through nodes "
            + " -> ".join(repr(n) for n in cycle)
            + " (runs on the event-driven engine or the vector"
            " backend's fixpoint schedule)",
        )


# --------------------------------------------------------------------------- #
# REP3xx -- determinism hazards
# --------------------------------------------------------------------------- #


def _walk_random_adversaries(
    value: Any, path: str
) -> Iterator[Tuple[str, Mapping[str, Any]]]:
    """Find every ``{"kind": "random"}`` adversary dict in a document."""
    if isinstance(value, Mapping):
        if value.get("kind") == "random":
            yield path, value
        for key, child in value.items():
            yield from _walk_random_adversaries(child, f"{path}/{key}")
    elif isinstance(value, list):
        for i, child in enumerate(value):
            yield from _walk_random_adversaries(child, f"{path}/{i}")


def _unseeded_random_findings(doc: Any, base: str) -> Iterator[Finding]:
    for path, adversary in _walk_random_adversaries(doc, base):
        if adversary.get("seed") is None:
            yield (
                f"{path}/seed",
                "RandomAdversary without a seed draws fresh entropy per "
                "run; results cannot be reproduced bit-identically "
                "(pass an integer seed)",
            )


@_rule(
    "REP301",
    "unseeded-random-adversary",
    Severity.WARNING,
    "circuit",
    "A random adversary has no seed, so runs are not reproducible.",
)
def _check_unseeded_random_adversary(ctx: CircuitContext) -> Iterator[Finding]:
    """Reproducibility is this project's north star: every stochastic
    component must be seeded.  (The vector backend still runs unseeded
    adversaries -- it pre-draws one seed per scenario/edge slot -- but
    the draws come from fresh OS entropy, so runs stay irreproducible.)"""
    yield from _unseeded_random_findings(ctx.doc, "")


@_rule(
    "REP302",
    "unseeded-experiment-adversary",
    Severity.WARNING,
    "experiment",
    "A random adversary inside experiment params has no seed.",
)
def _check_unseeded_experiment_adversary(
    ctx: ExperimentContext,
) -> Iterator[Finding]:
    """Same determinism hazard as REP301, found inside an experiment
    spec's parameters."""
    yield from _unseeded_random_findings(ctx.doc, "")


# --------------------------------------------------------------------------- #
# REP4xx -- backend capability prediction
# --------------------------------------------------------------------------- #


@_rule(
    "REP401",
    "vector-fallback",
    Severity.INFO,
    "circuit",
    "A sweep over this circuit would fall back to the scalar engine.",
)
def _check_vector_fallback(ctx: CircuitContext) -> Iterator[Finding]:
    """Static prediction of the vector backend's verdict, using the
    *same* analyzer the runtime compiler runs
    (:func:`repro.engine.capability.analyze_sweep`) on a scenario built
    from the netlist's declared stimuli -- so the prediction and an
    actual ``run_many(backend="vector")`` fallback can never disagree.
    Circuits that do not build are skipped (the REP0xx/REP1xx rules own
    those findings)."""
    from ..core.transitions import Signal
    from ..engine.sweep import Scenario
    from ..engine.vector import vector_capability
    from ..io.netlist import signal_from_dict
    from ..specs import CircuitSpec, SpecError

    try:
        circuit = CircuitSpec.from_dict(
            {
                "name": ctx.circuit.get("name", "lint"),
                "nodes": ctx.circuit.get("nodes", []),
                "edges": ctx.circuit.get("edges", []),
            }
        ).build()
        # CircuitError is a ValueError: structurally invalid circuits
        # (undriven pins, fan-in conflicts) bail out here and stay the
        # REP0xx rules' findings.
        circuit.validate()
    except (SpecError, KeyError, TypeError, ValueError):
        return

    inputs: Dict[str, Signal] = {}
    end_time = 10.0
    for i, node in ctx.nodes:
        if node.get("kind") != "input":
            continue
        name = node.get("name")
        if not isinstance(name, str):
            continue
        declared = ctx.inputs.get(name)
        signal: Optional[Signal] = None
        if isinstance(declared, Mapping):
            try:
                signal = signal_from_dict(declared)
            except (KeyError, TypeError, ValueError):
                signal = None
        if signal is None:
            initial = node.get("initial_value", 0)
            signal = Signal(initial if initial in (0, 1) else 0, [])
        inputs[name] = signal
        if len(signal.transitions):
            end_time = max(end_time, signal.transitions[-1].time + 1.0)
    if ctx.end_time is not None:
        end_time = float(ctx.end_time)

    report = vector_capability(
        circuit, [Scenario(name="lint", inputs=inputs, end_time=end_time)]
    )
    for reason in report.reasons:
        yield (
            ctx.base or "",
            f"sweeps would fall back to the scalar engine: {reason}",
        )


# --------------------------------------------------------------------------- #
# REP5xx -- experiment specs
# --------------------------------------------------------------------------- #


@_rule(
    "REP501",
    "unknown-experiment-kind",
    Severity.ERROR,
    "experiment",
    "An experiment spec uses an unregistered kind.",
)
def _check_unknown_experiment_kind(ctx: ExperimentContext) -> Iterator[Finding]:
    """Experiment kinds must be registered (built-ins load lazily);
    an unknown kind fails at run time in ``api.experiment``."""
    from ..specs import experiment_kinds

    known = experiment_kinds()
    if not isinstance(ctx.kind, str) or ctx.kind not in known:
        yield (
            "/kind",
            f"unknown experiment kind {ctx.kind!r}; registered: {known}",
        )


@_rule(
    "REP502",
    "unknown-experiment-param",
    Severity.ERROR,
    "experiment",
    "An experiment spec passes a parameter its kind does not define.",
)
def _check_unknown_experiment_param(ctx: ExperimentContext) -> Iterator[Finding]:
    """Experiment kinds have a closed parameter schema (their defaults
    dict); an unknown name is a typo that ``ExperimentSpec.resolved``
    would reject."""
    from ..specs import SpecError, get_experiment_kind

    if not isinstance(ctx.kind, str):
        return
    try:
        info = get_experiment_kind(ctx.kind)
    except SpecError:
        return  # REP501 owns unknown kinds
    for key in sorted(set(ctx.params) - set(info.defaults)):
        yield (
            f"/{key}",
            f"unknown parameter {key!r} for experiment kind {ctx.kind!r} "
            f"(known: {sorted(info.defaults)})",
        )
