"""Structured diagnostic records produced by the ``repro lint`` engine.

A :class:`Diagnostic` is one finding of one rule: a stable rule code
(``REP001``), a :class:`Severity`, a human-readable message, and a
JSON-pointer-style ``path`` locating the offending value inside the
linted document (``/circuit/edges/3/channel``).  A :class:`LintReport`
is the ordered collection of every finding over one input, with the
text/JSON renderings the CLI prints and the exit-code semantics it
maps to.  :class:`LintError` carries a failing report across the
``validate=`` hooks of :mod:`repro.api`.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple


class Severity(enum.Enum):
    """How seriously a diagnostic should be taken.

    ``ERROR`` findings mean the document cannot run correctly (CI and the
    ``validate=`` hooks fail on them); ``WARNING`` findings run but
    violate a model constraint or determinism expectation; ``INFO``
    findings are advisory (e.g. a predicted vector-backend fallback).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint rule.

    Attributes
    ----------
    code:
        Stable rule code (``REP001``); the catalogue lives in
        :mod:`repro.lint.rules` and ``docs/linting.md``.
    severity:
        :class:`Severity` of the finding.
    message:
        Human-readable description of the defect.
    path:
        JSON-pointer-style location into the linted document
        (``/circuit/edges/3/channel``; ``""`` means the document root).
    source:
        Label of the linted input (file path, ``<stdin>``, or a
        caller-provided name); ``None`` for in-memory objects.
    """

    code: str
    severity: Severity
    message: str
    path: str = ""
    source: Optional[str] = None

    def format(self) -> str:
        """Render the ``source:path CODE severity: message`` text line."""
        where = self.source or "<input>"
        location = self.path or "/"
        return f"{where}:{location} {self.code} {self.severity}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible dict form (used by ``repro lint --json``)."""
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "path": self.path,
            "source": self.source,
        }


@dataclass(frozen=True)
class LintReport:
    """Every diagnostic one lint pass produced over one input, in order.

    Diagnostics keep rule-catalogue order (rules run sorted by code, each
    yielding findings in document order), so text and JSON renderings are
    deterministic and golden-testable.
    """

    diagnostics: Tuple[Diagnostic, ...] = ()
    source: Optional[str] = None

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        """The error-severity findings."""
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        """The warning-severity findings."""
        return tuple(d for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def infos(self) -> Tuple[Diagnostic, ...]:
        """The info-severity findings."""
        return tuple(d for d in self.diagnostics if d.severity is Severity.INFO)

    @property
    def ok(self) -> bool:
        """True when the input is runnable: no error-severity findings."""
        return not self.errors

    def summary(self) -> str:
        """One-line count summary (``2 errors, 1 warning, 0 info``)."""
        n_err = len(self.errors)
        n_warn = len(self.warnings)
        n_info = len(self.infos)
        return (
            f"{n_err} error{'s' if n_err != 1 else ''}, "
            f"{n_warn} warning{'s' if n_warn != 1 else ''}, "
            f"{n_info} info"
        )

    def render(self) -> str:
        """Multi-line text rendering: one line per finding plus the summary."""
        lines = [d.format() for d in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible dict form (used by ``repro lint --json``)."""
        return {
            "source": self.source,
            "ok": self.ok,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "info": len(self.infos),
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


class LintError(ValueError):
    """Raised by the ``validate=`` hooks when linting finds errors.

    Carries the full :class:`LintReport` as ``report`` so callers can
    inspect or re-render every finding, not just the first.
    """

    def __init__(self, report: LintReport) -> None:
        super().__init__(
            "lint failed: "
            + report.summary()
            + "".join("\n  " + d.format() for d in report.errors)
        )
        self.report = report
