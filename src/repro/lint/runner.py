"""Input coercion and rule execution for ``repro lint``.

:func:`lint` accepts everything the rest of the API accepts -- netlist
file paths, netlist/circuit-spec/experiment-spec dicts, live
:class:`~repro.specs.CircuitSpec` / :class:`~repro.specs.ExperimentSpec`
/ :class:`~repro.io.netlist.Netlist` / circuit objects -- normalises it
to a JSON document, and runs every registered rule of the matching
scope in code order, producing a deterministic
:class:`~repro.lint.diagnostics.LintReport`.

Unreadable input (missing file, invalid JSON, a document that is not an
object) raises :class:`~repro.specs.SpecError` instead of producing
diagnostics: the CLI maps that to exit code 2, distinct from exit
code 1 (readable input with error findings).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping, Optional, Tuple, Union

from ..specs import CircuitSpec, ExperimentSpec, SpecError
from .diagnostics import Diagnostic, LintReport
from .rules import CircuitContext, ExperimentContext, iter_rules

__all__ = ["lint", "lint_path"]


def _experiment_doc(data: Mapping[str, Any]) -> Optional[Mapping[str, Any]]:
    """The experiment-spec view of a dict, or None when it is a circuit."""
    if "kind" in data and not ({"nodes", "edges", "circuit"} & set(data)):
        return data
    return None


def _coerce(obj: Any) -> Tuple[str, Mapping[str, Any]]:
    """Normalise any lintable object to ``(scope, document)``."""
    from ..io.netlist import Netlist, netlist_to_dict

    if isinstance(obj, CircuitSpec):
        return "circuit", obj.to_dict()
    if isinstance(obj, ExperimentSpec):
        return "experiment", obj.to_dict()
    if isinstance(obj, Netlist):
        return "circuit", netlist_to_dict(
            obj.circuit,
            inputs=obj.inputs,
            end_time=obj.end_time,
            metadata=obj.metadata,
        )
    if isinstance(obj, Mapping):
        experiment = _experiment_doc(obj)
        if experiment is not None:
            return "experiment", experiment
        return "circuit", obj
    to_spec = getattr(obj, "to_spec", None)
    if callable(to_spec):
        spec = to_spec()
        if isinstance(spec, CircuitSpec):
            return "circuit", spec.to_dict()
    raise SpecError(f"cannot lint object of type {type(obj).__name__}")


def _circuit_context(doc: Mapping[str, Any]) -> CircuitContext:
    if "circuit" in doc:
        circuit = doc["circuit"]
        if not isinstance(circuit, Mapping):
            raise SpecError("netlist 'circuit' field is not an object")
        base = "/circuit"
    elif {"nodes", "edges"} & set(doc):
        circuit = doc
        base = ""
    else:
        raise SpecError(
            "document has neither a 'circuit' field nor nodes/edges"
        )
    inputs = doc.get("inputs")
    metadata = doc.get("metadata")
    end_time = doc.get("end_time")
    return CircuitContext(
        doc=doc,
        base=base,
        circuit=circuit,
        inputs=inputs if isinstance(inputs, Mapping) else {},
        end_time=end_time if isinstance(end_time, (int, float)) else None,
        metadata=metadata if isinstance(metadata, Mapping) else {},
    )


def _experiment_context(doc: Mapping[str, Any]) -> ExperimentContext:
    # Spec dicts are flat ({"kind": ..., **params}); everything but the
    # kind is a parameter.
    return ExperimentContext(
        doc=doc,
        kind=doc.get("kind"),
        params={k: v for k, v in doc.items() if k != "kind"},
    )


def lint(
    obj: Any,
    *,
    source: Optional[str] = None,
) -> LintReport:
    """Run every applicable lint rule over one input.

    Parameters
    ----------
    obj:
        A netlist file path (str/Path ending in ``.json`` is *not*
        special-cased -- any str/Path is read as a JSON file), a
        netlist/circuit-spec/experiment-spec dict, or a live
        ``CircuitSpec`` / ``ExperimentSpec`` / ``Netlist`` / circuit.
    source:
        Label stamped onto every diagnostic (defaults to the file path
        when ``obj`` is one).

    Returns
    -------
    LintReport
        Every finding in rule-code order, each rule's findings in
        document order.  ``report.ok`` is False iff any finding has
        error severity.
    """
    if isinstance(obj, (str, Path)):
        return lint_path(obj, source=source)
    scope, doc = _coerce(obj)
    if scope == "experiment":
        context: Any = _experiment_context(doc)
    else:
        context = _circuit_context(doc)
    diagnostics = []
    for rule in iter_rules():
        if rule.scope != scope:
            continue
        for path, message in rule.check(context):
            diagnostics.append(
                Diagnostic(
                    code=rule.code,
                    severity=rule.severity,
                    message=message,
                    path=path,
                    source=source,
                )
            )
    return LintReport(diagnostics=tuple(diagnostics), source=source)


def lint_path(
    path: Union[str, Path], *, source: Optional[str] = None
) -> LintReport:
    """Lint a JSON document file (netlist, circuit spec, or experiment spec).

    Raises :class:`~repro.specs.SpecError` when the file cannot be read
    or parsed (the CLI's exit-code-2 case).
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SpecError(f"{path}: cannot read ({exc})") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(data, Mapping):
        raise SpecError(f"{path}: top-level JSON value is not an object")
    return lint(data, source=source if source is not None else str(path))
