"""Exporters for experiment results: JSON, CSV, and VCD.

The ``repro experiment export`` CLI subcommand and
:meth:`~repro.experiments.base.ExperimentResult` consumers share these:

* JSON -- the canonical result serialisation (spec + rows + provenance),
* CSV -- just the result rows, for spreadsheets and plotting scripts
  (list-valued cells are rendered as ``;``-joined items so the file stays
  one row per experiment row),
* VCD -- the recorded traces (experiments run with ``record_traces=True``)
  through :mod:`repro.io.vcd`, viewable in GTKWave next to HDL dumps.
"""

from __future__ import annotations

import csv
import io as _io
from pathlib import Path
from typing import Optional, Union

from ..specs import SpecError

__all__ = ["EXPORT_FORMATS", "result_to_csv", "result_to_vcd", "export_result"]

EXPORT_FORMATS = ("json", "csv", "vcd")


def _csv_cell(value) -> object:
    if isinstance(value, (list, tuple)):
        return ";".join(str(v) for v in value)
    return value


def result_to_csv(result) -> str:
    """Render an :class:`ExperimentResult`'s rows as CSV text."""
    buffer = _io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(result.columns))
    writer.writeheader()
    for row in result.rows:
        writer.writerow({key: _csv_cell(value) for key, value in row.items()})
    return buffer.getvalue()


def result_to_vcd(result, **kwargs) -> str:
    """Render an :class:`ExperimentResult`'s recorded traces as VCD text.

    Raises :class:`~repro.specs.SpecError` when the result carries no
    traces (most experiments only record them when run with
    ``record_traces=True``).
    """
    from .vcd import signals_to_vcd

    signals = result.signals()
    if not signals:
        raise SpecError(
            f"experiment result for kind {result.spec.kind!r} has no recorded "
            "traces; rerun it with the 'record_traces' parameter set to true"
        )
    kwargs.setdefault("comment", f"repro experiment {result.spec.kind}")
    return signals_to_vcd(signals, **kwargs)


def export_result(
    result,
    format: str,
    path: Optional[Union[str, Path]] = None,
) -> str:
    """Serialise a result in ``format`` (``json``/``csv``/``vcd``).

    Returns the rendered text; additionally writes it to ``path`` when
    given.
    """
    if format == "json":
        text = result.to_json() + "\n"
    elif format == "csv":
        text = result_to_csv(result)
    elif format == "vcd":
        text = result_to_vcd(result)
    else:
        raise SpecError(
            f"unknown export format {format!r}; supported: {', '.join(EXPORT_FORMATS)}"
        )
    if path is not None:
        Path(path).write_text(text)
    return text
