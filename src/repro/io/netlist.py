"""JSON netlist import/export for circuit specs.

A *netlist file* is the on-disk form of a :class:`repro.specs.CircuitSpec`
plus (optionally) a default stimulus and horizon, so a single JSON file is
a complete, runnable experiment definition::

    {
      "format": "repro-netlist",
      "version": 1,
      "circuit": { "name": ..., "nodes": [...], "edges": [...] },
      "inputs":  { "in": {"pulse": {"start": 1.0, "length": 3.0}} },
      "end_time": 60.0,
      "metadata": { ... }
    }

``inputs`` and ``end_time`` are optional; the ``python -m repro`` CLI uses
them as defaults and lets flags override.  Signals serialise either as an
explicit transition list (``{"initial_value": 0, "transitions": [[t, v],
...]}``), a single pulse (``{"pulse": {"start", "length", "polarity"}}``)
or a pulse train (``{"pulse_train": {"start", "widths", "gaps",
"initial_value"}}``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from ..core.transitions import Signal, Transition
from ..specs import CircuitSpec, SpecError, as_circuit

__all__ = [
    "NETLIST_FORMAT",
    "NETLIST_VERSION",
    "Netlist",
    "signal_to_dict",
    "signal_from_dict",
    "netlist_to_dict",
    "netlist_from_dict",
    "load_netlist",
    "save_netlist",
]

NETLIST_FORMAT = "repro-netlist"
NETLIST_VERSION = 1


# --------------------------------------------------------------------------- #
# Signal serialisation
# --------------------------------------------------------------------------- #


def signal_to_dict(signal: Signal) -> Dict[str, Any]:
    """Serialise a signal as an explicit transition list."""
    return {
        "initial_value": signal.initial_value,
        "transitions": [[t.time, t.value] for t in signal],
    }


def signal_from_dict(data: Mapping[str, Any]) -> Signal:
    """Rebuild a signal from its dict form (transition list, pulse, or train)."""
    if "pulse" in data:
        pulse = data["pulse"]
        return Signal.pulse(
            float(pulse["start"]),
            float(pulse["length"]),
            int(pulse.get("polarity", 1)),
        )
    if "pulse_train" in data:
        train = data["pulse_train"]
        return Signal.pulse_train(
            float(train.get("start", 0.0)),
            [float(w) for w in train["widths"]],
            [float(g) for g in train["gaps"]],
            int(train.get("initial_value", 0)),
        )
    transitions = [
        Transition(float(t), int(v)) for t, v in data.get("transitions", [])
    ]
    return Signal(int(data.get("initial_value", 0)), transitions)


# --------------------------------------------------------------------------- #
# Netlist files
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Netlist:
    """A parsed netlist file: the circuit spec plus optional defaults."""

    circuit: CircuitSpec
    inputs: Dict[str, Signal] = field(default_factory=dict)
    end_time: Optional[float] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def build(self):
        """Instantiate the circuit."""
        return self.circuit.build()


def netlist_to_dict(
    circuit,
    *,
    inputs: Optional[Mapping[str, Signal]] = None,
    end_time: Optional[float] = None,
    metadata: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the JSON-compatible netlist dict for a circuit or spec."""
    if not isinstance(circuit, CircuitSpec):
        circuit = as_circuit(circuit).to_spec()
    data: Dict[str, Any] = {
        "format": NETLIST_FORMAT,
        "version": NETLIST_VERSION,
        "circuit": circuit.to_dict(),
    }
    if inputs:
        data["inputs"] = {name: signal_to_dict(sig) for name, sig in inputs.items()}
    if end_time is not None:
        data["end_time"] = float(end_time)
    if metadata:
        data["metadata"] = dict(metadata)
    return data


def netlist_from_dict(data: Mapping[str, Any]) -> Netlist:
    """Parse a netlist dict (the inverse of :func:`netlist_to_dict`).

    A bare circuit-spec dict (``{"name", "nodes", "edges"}``) is accepted
    too, so hand-written netlists can omit the envelope.
    """
    if "circuit" not in data:
        if {"nodes", "edges"} <= set(data):
            return Netlist(circuit=CircuitSpec.from_dict(data))
        raise SpecError("netlist dict has neither a 'circuit' field nor nodes/edges")
    fmt = data.get("format", NETLIST_FORMAT)
    if fmt != NETLIST_FORMAT:
        raise SpecError(f"not a repro netlist (format={fmt!r})")
    version = int(data.get("version", NETLIST_VERSION))
    if version > NETLIST_VERSION:
        raise SpecError(
            f"netlist version {version} is newer than supported ({NETLIST_VERSION})"
        )
    inputs = {
        name: signal_from_dict(sig)
        for name, sig in (data.get("inputs") or {}).items()
    }
    end_time = data.get("end_time")
    return Netlist(
        circuit=CircuitSpec.from_dict(data["circuit"]),
        inputs=inputs,
        end_time=None if end_time is None else float(end_time),
        metadata=dict(data.get("metadata") or {}),
    )


def load_netlist(path: Union[str, Path]) -> Netlist:
    """Load a netlist JSON file."""
    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"{path}: not valid JSON ({exc})") from exc
    return netlist_from_dict(data)


def save_netlist(
    circuit,
    path: Union[str, Path],
    *,
    inputs: Optional[Mapping[str, Signal]] = None,
    end_time: Optional[float] = None,
    metadata: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Write a circuit (or spec) as a netlist JSON file; returns the path."""
    data = netlist_to_dict(
        circuit, inputs=inputs, end_time=end_time, metadata=metadata
    )
    path = Path(path)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path
