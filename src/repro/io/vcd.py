"""Value-change-dump (VCD) export of signals and executions.

The involution/eta-involution channels are meant as drop-in replacements
for the delay models of HDL simulators; exporting executions as VCD makes
the traces of this reproduction inspectable with the usual waveform viewers
(GTKWave etc.) and diffable against HDL simulation output.

Only the small subset of VCD needed for binary signals is implemented:
``$timescale``, ``$var wire 1`` declarations, ``$dumpvars`` and scalar
value changes.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional

from ..core.transitions import Signal

__all__ = ["write_vcd", "signals_to_vcd", "execution_to_vcd"]

_IDENTIFIER_ALPHABET = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _identifier(index: int) -> str:
    """Short VCD identifier for the ``index``-th variable."""
    if index < 0:
        raise ValueError("index must be non-negative")
    digits = []
    base = len(_IDENTIFIER_ALPHABET)
    while True:
        digits.append(_IDENTIFIER_ALPHABET[index % base])
        index //= base
        if index == 0:
            break
        index -= 1
    return "".join(reversed(digits))


def signals_to_vcd(
    signals: Mapping[str, Signal],
    *,
    timescale: str = "1ps",
    time_scale_factor: float = 1.0,
    comment: Optional[str] = None,
) -> str:
    """Render a dictionary of named signals as VCD text.

    ``time_scale_factor`` multiplies the (float) transition times before
    rounding them to integer VCD ticks; choose it so the relevant time
    differences are resolved (e.g. 1000 for ps-resolution signals whose
    unit is ns).
    """
    lines: List[str] = []
    if comment:
        lines.append(f"$comment {comment} $end")
    lines.append(f"$timescale {timescale} $end")
    lines.append("$scope module repro $end")
    identifiers: Dict[str, str] = {}
    for index, name in enumerate(signals):
        ident = _identifier(index)
        identifiers[name] = ident
        sanitized = name.replace(" ", "_")
        lines.append(f"$var wire 1 {ident} {sanitized} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")
    lines.append("$dumpvars")
    for name, signal in signals.items():
        lines.append(f"{signal.initial_value}{identifiers[name]}")
    lines.append("$end")

    events: List[tuple] = []
    for name, signal in signals.items():
        for transition in signal:
            if not math.isfinite(transition.time):
                continue
            tick = int(round(transition.time * time_scale_factor))
            events.append((tick, identifiers[name], transition.value))
    events.sort(key=lambda e: e[0])
    current_tick: Optional[int] = None
    for tick, ident, value in events:
        if tick != current_tick:
            lines.append(f"#{tick}")
            current_tick = tick
        lines.append(f"{value}{ident}")
    return "\n".join(lines) + "\n"


def execution_to_vcd(
    execution,
    *,
    include_edges: bool = False,
    timescale: str = "1ps",
    time_scale_factor: float = 1.0,
) -> str:
    """Render a simulator :class:`~repro.circuits.simulator.Execution` as VCD."""
    signals: Dict[str, Signal] = dict(execution.node_signals)
    if include_edges:
        for name, signal in execution.edge_signals.items():
            signals[f"edge.{name}"] = signal
    return signals_to_vcd(
        signals, timescale=timescale, time_scale_factor=time_scale_factor
    )


def write_vcd(
    path_or_file,
    signals: Mapping[str, Signal],
    **kwargs,
) -> None:
    """Write :func:`signals_to_vcd` output to a path or file object."""
    text = signals_to_vcd(signals, **kwargs)
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            handle.write(text)
