"""Trace import/export (VCD)."""

from .vcd import execution_to_vcd, signals_to_vcd, write_vcd

__all__ = ["signals_to_vcd", "execution_to_vcd", "write_vcd"]
