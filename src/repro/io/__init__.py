"""Trace/netlist/result import and export (VCD, JSON netlists, CSV)."""

from .export import EXPORT_FORMATS, export_result, result_to_csv, result_to_vcd
from .netlist import (
    Netlist,
    load_netlist,
    netlist_from_dict,
    netlist_to_dict,
    save_netlist,
    signal_from_dict,
    signal_to_dict,
)
from .vcd import execution_to_vcd, signals_to_vcd, write_vcd

__all__ = [
    "signals_to_vcd",
    "execution_to_vcd",
    "write_vcd",
    "Netlist",
    "load_netlist",
    "save_netlist",
    "netlist_to_dict",
    "netlist_from_dict",
    "signal_to_dict",
    "signal_from_dict",
    "EXPORT_FORMATS",
    "export_result",
    "result_to_csv",
    "result_to_vcd",
]
