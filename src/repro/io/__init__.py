"""Trace and netlist import/export (VCD waveforms, JSON netlists)."""

from .netlist import (
    Netlist,
    load_netlist,
    netlist_from_dict,
    netlist_to_dict,
    save_netlist,
    signal_from_dict,
    signal_to_dict,
)
from .vcd import execution_to_vcd, signals_to_vcd, write_vcd

__all__ = [
    "signals_to_vcd",
    "execution_to_vcd",
    "write_vcd",
    "Netlist",
    "load_netlist",
    "save_netlist",
    "netlist_to_dict",
    "netlist_from_dict",
    "signal_to_dict",
    "signal_from_dict",
]
