"""The deterministic involution channel (Függer et al., DATE 2015).

An involution channel is a single-history channel whose delay functions
``(delta_up, delta_down)`` form an :class:`~repro.core.involution.InvolutionPair`.
The DATE'15 result is that circuits built from involution channels are
*faithful* for Short-Pulse Filtration: bounded-time SPF is impossible,
unbounded SPF is possible, matching physical circuits.

The DATE'18 paper (reproduced here) generalises this channel by adding
bounded adversarial noise, see :mod:`repro.core.eta_channel`.
"""

from __future__ import annotations

import math
from typing import Optional

from .channel import Channel
from .involution import InvolutionPair

__all__ = ["InvolutionChannel"]


class InvolutionChannel(Channel):
    """A single-history channel defined by an involution delay pair.

    Parameters
    ----------
    pair:
        The involution delay pair ``(delta_up, delta_down)``.
    inverting:
        If True the channel logically inverts (inverter gate + channel in
        one).  The delay polarity is always chosen by the *output*
        transition: rising output transitions use ``delta_up``.
    guard_domain:
        If True (default), the previous-output-to-input delay ``T`` is
        clamped to the (open) domain of the delay function, yielding a
        ``-inf`` delay for out-of-domain arguments exactly as the
        ``max``-term guard in the paper does.  Such transitions are in
        non-FIFO order with their predecessor and therefore cancel.
    """

    def __init__(
        self,
        pair: InvolutionPair,
        *,
        inverting: bool = False,
        guard_domain: bool = True,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(inverting=inverting, name=name)
        self.pair = pair
        self.guard_domain = bool(guard_domain)
        # Hot-path constants: delay_for runs once per transition, so the
        # per-polarity function references, limits and domain edges are
        # hoisted here instead of being re-derived via method calls.
        self._delta_up = pair.delta_up
        self._delta_down = pair.delta_down
        self._up_inf = pair.delta_up.delta_inf()
        self._down_inf = pair.delta_down.delta_inf()
        self._up_low = pair.delta_up.domain_low()
        self._down_low = pair.delta_down.domain_low()

    # ------------------------------------------------------------------ #

    @classmethod
    def exp_channel(
        cls,
        tau: float,
        t_p: float,
        v_th: float = 0.5,
        *,
        inverting: bool = False,
        name: Optional[str] = None,
    ) -> "InvolutionChannel":
        """Construct an exp-channel (first-order RC with threshold)."""
        return cls(InvolutionPair.exp_channel(tau, t_p, v_th), inverting=inverting, name=name)

    @property
    def delta_min(self) -> float:
        """Minimum delay ``delta_min`` of the channel (Lemma 1)."""
        return self.pair.delta_min

    @property
    def delta_up_inf(self) -> float:
        """Limit of the up-delay for large ``T``."""
        return self.pair.delta_up_inf

    @property
    def delta_down_inf(self) -> float:
        """Limit of the down-delay for large ``T``."""
        return self.pair.delta_down_inf

    # ------------------------------------------------------------------ #

    def delay_for(self, T: float, rising_output: bool, index: int, time: float) -> float:
        if rising_output:
            delta, inf_limit, low = self._delta_up, self._up_inf, self._up_low
        else:
            delta, inf_limit, low = self._delta_down, self._down_inf, self._down_low
        if T == math.inf:
            return inf_limit
        if self.guard_domain and T <= low:
            return -math.inf
        return delta(T)

    def __repr__(self) -> str:
        return (
            f"InvolutionChannel({self.pair!r}, inverting={self.inverting}, "
            f"name={self.name!r})"
        )
