"""Signals and transitions of the binary circuit model.

The circuit model of Függer et al. (DATE 2015 / DATE 2018) describes the
digital abstraction of a waveform as a *signal*: a list of alternating
rising/falling transitions.  This module provides the :class:`Transition`
and :class:`Signal` types together with the invariants the paper imposes:

S1  the initial transition is at time ``-inf``; all other transitions are
    at times ``t >= 0``,
S2  the sequence of transition times is strictly increasing,
S3  if there are infinitely many transitions, their times are unbounded
    (trivially satisfied here because we only represent finite prefixes).

Every signal uniquely corresponds to a right-continuous *signal trace*
``R -> {0, 1}`` whose value at time ``t`` is the value of the most recent
transition at or before ``t``.
"""

from __future__ import annotations

import math
from array import array as _array
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "RISING",
    "FALLING",
    "Transition",
    "Pulse",
    "Signal",
    "SignalError",
]

#: Value carried by a rising transition.
RISING = 1
#: Value carried by a falling transition.
FALLING = 0


class SignalError(ValueError):
    """Raised when a list of transitions violates the signal invariants."""


@dataclass(frozen=True, order=True, slots=True)
class Transition:
    """A single transition of a binary signal.

    Attributes
    ----------
    time:
        The time at which the transition occurs.  May be ``-inf`` only for
        the implicit initial transition of a signal.
    value:
        The value *after* the transition: ``1`` for a rising transition,
        ``0`` for a falling transition.
    """

    time: float
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise SignalError(f"transition value must be 0 or 1, got {self.value!r}")

    @property
    def is_rising(self) -> bool:
        """True if this is a rising transition."""
        return self.value == RISING

    @property
    def is_falling(self) -> bool:
        """True if this is a falling transition."""
        return self.value == FALLING

    def shifted(self, delta: float) -> "Transition":
        """Return a copy of this transition shifted by ``delta`` in time."""
        return Transition(self.time + delta, self.value)

    def __reduce__(self):
        # Plain constructor-args pickling: much cheaper than the default
        # slots-state protocol (executions shipped between sweep workers
        # contain hundreds of thousands of transitions).
        return (Transition, (self.time, self.value))

    def inverted(self) -> "Transition":
        """Return a copy with the opposite value (used by inverting gates)."""
        return Transition(self.time, 1 - self.value)


@dataclass(frozen=True)
class Pulse:
    """A single positive or negative pulse.

    A *pulse of length* ``length`` *at time* ``start`` (paper, Section IV)
    has initial value ``1 - polarity``, a transition to ``polarity`` at
    ``start`` and a transition back at ``start + length``.
    """

    start: float
    length: float
    polarity: int = 1

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise SignalError(f"pulse length must be positive, got {self.length}")
        if self.polarity not in (0, 1):
            raise SignalError("pulse polarity must be 0 or 1")

    @property
    def end(self) -> float:
        """Time of the trailing transition of the pulse."""
        return self.start + self.length

    def to_signal(self) -> "Signal":
        """Return the two-transition signal containing exactly this pulse."""
        return Signal(
            initial_value=1 - self.polarity,
            transitions=[
                Transition(self.start, self.polarity),
                Transition(self.end, 1 - self.polarity),
            ],
        )


class Signal:
    """A binary signal: an initial value plus alternating transitions.

    Parameters
    ----------
    initial_value:
        The value of the implicit transition at time ``-inf``.
    transitions:
        Transitions at finite times ``>= 0``, strictly increasing and
        alternating in value, the first one differing from
        ``initial_value``.
    allow_negative_times:
        The paper requires transition times ``>= 0`` (invariant S1).  Some
        internal computations (e.g. tentative output transitions of a
        channel) produce negative times before cancellation; those callers
        relax the check.
    """

    # _packed_times caches the float64-packed transition times (the pickle
    # and checkpoint wire format).  Producers that already hold the times
    # as a contiguous array (the vector backend's result assembly, packed
    # decoding itself) prefill it; for everyone else it is computed on
    # first packing.  Signals are immutable, so the cache can never go
    # stale.  It is identity-only state: excluded from equality/pickling
    # semantics (the packed form *is* the times, just pre-serialised).
    __slots__ = ("_initial_value", "_transitions", "_packed_times")

    def __init__(
        self,
        initial_value: int,
        transitions: Iterable[Transition] = (),
        *,
        allow_negative_times: bool = False,
    ) -> None:
        if initial_value not in (0, 1):
            raise SignalError("initial value must be 0 or 1")
        trans = [t if isinstance(t, Transition) else Transition(*t) for t in transitions]
        _validate_transitions(initial_value, trans, allow_negative_times)
        self._initial_value = initial_value
        self._transitions = tuple(trans)
        self._packed_times: Optional[bytes] = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def _trusted(cls, initial_value: int, transitions: Sequence[Transition]) -> "Signal":
        """Fast path for internally generated, already well-formed transitions.

        Skips per-transition validation; callers (the execution engine's
        result assembly) guarantee strictly increasing times and alternating
        values by construction.
        """
        signal = cls.__new__(cls)
        signal._initial_value = initial_value
        signal._transitions = tuple(transitions)
        signal._packed_times = None
        return signal

    def _pack_times(self) -> bytes:
        """The transition times as packed little-endian float64 bytes.

        The pickle and checkpoint wire format for signals (values are not
        packed at all: alternation is a hard invariant, so they are fully
        determined by ``initial_value``).  Cached on first use; the
        vector backend prefills the cache straight from its result
        arrays, making packing a hot sweep's executions nearly free.
        """
        packed = self._packed_times
        if packed is None:
            packed = self._packed_times = _array(
                "d", [tr.time for tr in self._transitions]
            ).tobytes()
        return packed

    def __reduce__(self):
        # Packed pickling: the initial value plus times as a double array.
        # The process-based sweep backend ships whole executions (dozens
        # of signals per run) back to the parent, and packing beats
        # per-Transition object pickling by roughly an order of magnitude;
        # the sharded checkpoint writer runs through here on every chunk.
        return (_signal_from_packed, (self._initial_value, self._pack_times()))

    @classmethod
    def constant(cls, value: int) -> "Signal":
        """The signal that is constantly ``value``."""
        return cls(value, [])

    @classmethod
    def zero(cls) -> "Signal":
        """The constant-0 signal (the *zero signal* of the paper)."""
        return cls.constant(0)

    @classmethod
    def one(cls) -> "Signal":
        """The constant-1 signal."""
        return cls.constant(1)

    @classmethod
    def step(cls, time: float, value: int = 1) -> "Signal":
        """A single transition to ``value`` at ``time``."""
        return cls(1 - value, [Transition(time, value)])

    @classmethod
    def pulse(cls, start: float, length: float, polarity: int = 1) -> "Signal":
        """A single pulse of ``length`` starting at ``start``."""
        return Pulse(start, length, polarity).to_signal()

    @classmethod
    def from_times(
        cls,
        times: Sequence[float],
        initial_value: int = 0,
        *,
        allow_negative_times: bool = False,
    ) -> "Signal":
        """Build a signal from transition *times* alone.

        Values alternate starting from ``1 - initial_value``.
        """
        value = 1 - initial_value
        transitions = []
        for t in times:
            transitions.append(Transition(float(t), value))
            value = 1 - value
        return cls(initial_value, transitions, allow_negative_times=allow_negative_times)

    @classmethod
    def pulse_train(
        cls,
        start: float,
        up_times: Sequence[float],
        down_times: Sequence[float],
        initial_value: int = 0,
    ) -> "Signal":
        """A train of ``len(up_times)`` positive pulses.

        Pulse ``i`` is high for ``up_times[i]`` and followed by a low phase
        of ``down_times[i]`` (the last down phase extends to infinity, so
        ``down_times`` may have one element less than ``up_times``).
        """
        if not up_times:
            return cls.constant(initial_value)
        if len(down_times) < len(up_times) - 1:
            raise SignalError("need at least len(up_times) - 1 down times")
        times: List[float] = []
        t = start
        for i, up in enumerate(up_times):
            if up <= 0:
                raise SignalError("pulse up-times must be positive")
            times.append(t)
            t += up
            times.append(t)
            if i < len(up_times) - 1:
                down = down_times[i]
                if down <= 0:
                    raise SignalError("pulse down-times must be positive")
                t += down
        return cls.from_times(times, initial_value)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def initial_value(self) -> int:
        """Value of the signal before its first finite transition."""
        return self._initial_value

    @property
    def transitions(self) -> Tuple[Transition, ...]:
        """The finite-time transitions of the signal."""
        return self._transitions

    @property
    def final_value(self) -> int:
        """Value after the last transition (the eventual steady state)."""
        if self._transitions:
            return self._transitions[-1].value
        return self._initial_value

    def __len__(self) -> int:
        return len(self._transitions)

    def __iter__(self) -> Iterator[Transition]:
        return iter(self._transitions)

    def __getitem__(self, index):
        return self._transitions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Signal):
            return NotImplemented
        return (
            self._initial_value == other._initial_value
            and self._transitions == other._transitions
        )

    def __hash__(self) -> int:
        return hash((self._initial_value, self._transitions))

    def __repr__(self) -> str:
        parts = ", ".join(f"({t.time:g},{t.value})" for t in self._transitions[:6])
        more = "..." if len(self._transitions) > 6 else ""
        return f"Signal(init={self._initial_value}, [{parts}{more}])"

    # ------------------------------------------------------------------ #
    # Trace evaluation
    # ------------------------------------------------------------------ #

    def value_at(self, time: float) -> int:
        """Value of the signal trace at ``time`` (right-continuous)."""
        value = self._initial_value
        for tr in self._transitions:
            if tr.time <= time:
                value = tr.value
            else:
                break
        return value

    def values_at(self, times: Sequence[float]) -> List[int]:
        """Vectorised :meth:`value_at` for a sorted or unsorted time list."""
        return [self.value_at(t) for t in times]

    def transition_times(self) -> List[float]:
        """The list of finite transition times."""
        return [t.time for t in self._transitions]

    def is_zero(self) -> bool:
        """True if this is the zero signal (constant 0)."""
        return self._initial_value == 0 and not self._transitions

    def is_constant(self) -> bool:
        """True if the signal has no finite transitions."""
        return not self._transitions

    # ------------------------------------------------------------------ #
    # Pulse queries (paper, Section IV definitions)
    # ------------------------------------------------------------------ #

    def pulses(self, polarity: int = 1) -> List[Pulse]:
        """Return all maximal pulses of the given polarity.

        A (positive) pulse is a rising transition followed by the next
        falling transition.  A trailing rising transition without a
        matching falling transition is *not* a pulse (it is a step) and is
        not reported.
        """
        result: List[Pulse] = []
        open_start: Optional[float] = None
        for tr in self._transitions:
            if tr.value == polarity:
                open_start = tr.time
            elif open_start is not None:
                result.append(Pulse(open_start, tr.time - open_start, polarity))
                open_start = None
        return result

    def contains_pulse_shorter_than(self, epsilon: float, polarity: int = 1) -> bool:
        """True if the signal contains a pulse of length ``< epsilon``.

        This is the negation of SPF condition F4 for a single output signal.
        """
        return any(p.length < epsilon for p in self.pulses(polarity))

    def shortest_pulse_length(self, polarity: int = 1) -> Optional[float]:
        """Length of the shortest pulse of given polarity, or None."""
        pulses = self.pulses(polarity)
        if not pulses:
            return None
        return min(p.length for p in pulses)

    def duty_cycles(self) -> List[float]:
        """Duty cycles ``gamma_n = Delta_n / P_n`` of consecutive positive pulses.

        The period ``P_n`` of pulse ``n`` is measured from its rising
        transition to the rising transition of the next pulse, matching the
        definition used in Lemma 5/6 of the paper.  The last pulse has no
        successor and therefore no duty cycle.
        """
        pulses = self.pulses(1)
        cycles: List[float] = []
        for current, following in zip(pulses, pulses[1:]):
            period = following.start - current.start
            cycles.append(current.length / period)
        return cycles

    def up_down_times(self) -> Tuple[List[float], List[float]]:
        """Return (up_times, down_times) of the positive pulse train.

        ``up_times[i]`` is the length of pulse ``i``; ``down_times[i]`` is
        the gap between pulse ``i`` and pulse ``i + 1``.
        """
        pulses = self.pulses(1)
        ups = [p.length for p in pulses]
        downs = [nxt.start - cur.end for cur, nxt in zip(pulses, pulses[1:])]
        return ups, downs

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #

    def shifted(self, delta: float) -> "Signal":
        """Return the signal shifted by ``delta`` in time."""
        return Signal(
            self._initial_value,
            [t.shifted(delta) for t in self._transitions],
            allow_negative_times=True,
        )

    def inverted(self) -> "Signal":
        """Return the logical complement of the signal."""
        return Signal(
            1 - self._initial_value,
            [t.inverted() for t in self._transitions],
            allow_negative_times=True,
        )

    def restricted(self, until: float) -> "Signal":
        """Return the signal with transitions strictly after ``until`` dropped."""
        return Signal(
            self._initial_value,
            [t for t in self._transitions if t.time <= until],
            allow_negative_times=True,
        )

    def after(self, time: float) -> "Signal":
        """Return the signal as seen from ``time`` on.

        The initial value becomes the value at ``time`` and only strictly
        later transitions are kept (not re-based; absolute times are kept).
        """
        return Signal(
            self.value_at(time),
            [t for t in self._transitions if t.time > time],
            allow_negative_times=True,
        )

    def stabilization_time(self) -> float:
        """Time of the last transition, or ``-inf`` for constant signals."""
        if not self._transitions:
            return -math.inf
        return self._transitions[-1].time

    def to_samples(self, times: Sequence[float]) -> List[int]:
        """Sample the signal trace at the given times."""
        return self.values_at(times)


def _validate_transitions(
    initial_value: int,
    transitions: List[Transition],
    allow_negative_times: bool,
) -> None:
    """Check invariants S1/S2 plus value alternation."""
    previous_time = -math.inf
    previous_value = initial_value
    for tr in transitions:
        if math.isnan(tr.time):
            raise SignalError("transition time must not be NaN")
        if not allow_negative_times and tr.time < 0:
            raise SignalError(
                f"transition times must be >= 0 (invariant S1), got {tr.time}"
            )
        if tr.time == -math.inf:
            raise SignalError("only the implicit initial transition may be at -inf")
        if tr.time <= previous_time:
            raise SignalError(
                "transition times must be strictly increasing (invariant S2): "
                f"{tr.time} after {previous_time}"
            )
        if tr.value == previous_value:
            raise SignalError(
                f"transition values must alternate, got two consecutive {tr.value}s"
            )
        previous_time = tr.time
        previous_value = tr.value


def _signal_from_packed(initial_value: int, times: bytes) -> Signal:
    """Rebuild a pickled :class:`Signal` from its packed representation.

    Transition values are derived, not stored: alternation is a hard
    signal invariant, so they toggle starting from ``1 - initial_value``.
    This is the hot path of process-backend result shipping and
    checkpoint resume: millions of transitions flow through here, so the
    objects are assembled directly (``__new__`` + ``object.__setattr__``,
    the same thing the frozen dataclass ``__init__`` does) instead of
    paying the constructor's argument handling and re-validation -- the
    packed form was produced from an already-validated signal.
    """
    unpacked = _array("d")
    unpacked.frombytes(times)
    new, setattr_ = Transition.__new__, object.__setattr__
    transitions = []
    append = transitions.append
    value = 1 - initial_value
    for t in unpacked:
        tr = new(Transition)
        setattr_(tr, "time", t)
        setattr_(tr, "value", value)
        value = 1 - value
        append(tr)
    signal = Signal._trusted(initial_value, transitions)
    # The packed form is in hand -- cache it, so re-packing (a resumed
    # sweep re-checkpointing, a worker result pickled onward) is free.
    signal._packed_times = bytes(times)
    return signal
