"""Core model: signals, delay functions, involution and eta-involution channels.

This subpackage implements the paper's primary contribution (the
eta-involution channel) together with its deterministic predecessor and the
non-faithful baseline channels it is compared against.
"""

from .adversary import (
    Adversary,
    BestCaseAdversary,
    DeCancelAdversary,
    EtaBound,
    RandomAdversary,
    SequenceAdversary,
    SineAdversary,
    WorstCaseAdversary,
    ZeroAdversary,
)
from .baselines import (
    DegradationDelayChannel,
    InertialDelayChannel,
    PureDelayChannel,
    remove_short_pulses,
)
from .channel import (
    Channel,
    PendingTransition,
    ZeroDelayChannel,
    cancel_non_fifo,
    cancel_non_fifo_reference,
    pending_to_signal,
    transport_resolve,
)
from .composition import SerialChannel
from .constraint import (
    admissible_eta_bound,
    constraint_C_margin,
    max_eta_minus,
    max_eta_plus,
    max_symmetric_eta,
    satisfies_constraint_C,
)
from .delay_functions import (
    ConstantDelay,
    DelayFunction,
    ExpDelay,
    FunctionalDelay,
    ScaledDelay,
    ShiftedDelay,
    TableDelay,
)
from .eta_channel import EtaInvolutionChannel
from .involution import InvolutionError, InvolutionPair, exp_channel_pair
from .involution_channel import InvolutionChannel
from .transitions import FALLING, RISING, Pulse, Signal, SignalError, Transition

__all__ = [
    # transitions
    "RISING",
    "FALLING",
    "Transition",
    "Pulse",
    "Signal",
    "SignalError",
    # delay functions
    "DelayFunction",
    "ExpDelay",
    "TableDelay",
    "ShiftedDelay",
    "ScaledDelay",
    "ConstantDelay",
    "FunctionalDelay",
    # involution
    "InvolutionPair",
    "InvolutionError",
    "exp_channel_pair",
    # channels
    "Channel",
    "ZeroDelayChannel",
    "PendingTransition",
    "cancel_non_fifo",
    "cancel_non_fifo_reference",
    "transport_resolve",
    "pending_to_signal",
    "InvolutionChannel",
    "EtaInvolutionChannel",
    "SerialChannel",
    # adversaries
    "EtaBound",
    "Adversary",
    "ZeroAdversary",
    "WorstCaseAdversary",
    "BestCaseAdversary",
    "RandomAdversary",
    "SineAdversary",
    "SequenceAdversary",
    "DeCancelAdversary",
    # constraint (C)
    "constraint_C_margin",
    "satisfies_constraint_C",
    "max_eta_minus",
    "max_eta_plus",
    "max_symmetric_eta",
    "admissible_eta_bound",
    # baselines
    "PureDelayChannel",
    "InertialDelayChannel",
    "DegradationDelayChannel",
    "remove_short_pulses",
]
