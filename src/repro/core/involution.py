"""Involution delay-function pairs.

An involution channel (Függer et al., DATE 2015) is characterised by two
strictly increasing concave delay functions

* ``delta_up   : (-delta_down_inf, inf) -> (-inf, delta_up_inf)``
* ``delta_down : (-delta_up_inf,  inf) -> (-inf, delta_down_inf)``

with finite limits ``delta_up_inf`` / ``delta_down_inf`` that satisfy the
*involution property* (Eq. 1 of the DATE'18 paper)::

    -delta_up(-delta_down(T)) = T     and     -delta_down(-delta_up(T)) = T.

This module provides :class:`InvolutionPair`, which bundles the two
functions, validates the property numerically, computes ``delta_min``
(the unique fixed point with ``delta_up(-delta_min) = delta_min =
delta_down(-delta_min)``, Lemma 1) and offers constructors for the common
cases (exp-channels, and completing a pair from only one of the two
functions via the involution property).
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

import numpy as np
from scipy import optimize

from .delay_functions import DelayFunction, ExpDelay, FunctionalDelay, TableDelay

__all__ = ["InvolutionPair", "InvolutionError", "exp_channel_pair"]


class InvolutionError(ValueError):
    """Raised when a pair of delay functions is not a valid involution pair."""


class InvolutionPair:
    """A pair ``(delta_up, delta_down)`` satisfying the involution property.

    Parameters
    ----------
    delta_up, delta_down:
        The delay functions for rising and falling output transitions.
    validate:
        If True (default), the involution property, strict causality and
        monotonicity are checked numerically on a grid of test points.
    strict_causality_required:
        The faithfulness results require ``delta_up(0) > 0`` and
        ``delta_down(0) > 0``; set to False to allow non-strictly-causal
        pairs (only useful for negative tests).
    """

    def __init__(
        self,
        delta_up: DelayFunction,
        delta_down: DelayFunction,
        *,
        validate: bool = True,
        strict_causality_required: bool = True,
        tolerance: float = 1e-6,
    ) -> None:
        self.delta_up = delta_up
        self.delta_down = delta_down
        self.tolerance = float(tolerance)
        if validate:
            self._validate(strict_causality_required)
        self._delta_min: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def exp_channel(cls, tau: float, t_p: float, v_th: float = 0.5) -> "InvolutionPair":
        """The paper's exp-channel pair with RC constant ``tau``, pure delay
        ``t_p`` and normalised threshold ``v_th``."""
        up = ExpDelay(tau, t_p, v_th, rising=True)
        down = ExpDelay(tau, t_p, v_th, rising=False)
        return cls(up, down)

    @classmethod
    def from_up(cls, delta_up: DelayFunction, *, validate: bool = True) -> "InvolutionPair":
        """Complete a pair from ``delta_up`` alone.

        The involution property forces ``delta_down(T) = -delta_up^{-1}(-T)``;
        this constructor builds that function by numerical inversion.
        """
        delta_down = _involution_partner(delta_up)
        return cls(delta_up, delta_down, validate=validate)

    @classmethod
    def from_down(cls, delta_down: DelayFunction, *, validate: bool = True) -> "InvolutionPair":
        """Complete a pair from ``delta_down`` alone (see :meth:`from_up`)."""
        delta_up = _involution_partner(delta_down)
        return cls(delta_up, delta_down, validate=validate)

    @classmethod
    def from_samples(
        cls,
        T_up: Sequence[float],
        delta_up: Sequence[float],
        T_down: Sequence[float],
        delta_down: Sequence[float],
        *,
        validate: bool = False,
    ) -> "InvolutionPair":
        """Build a pair from measured samples of both delay functions.

        Measured pairs generally satisfy the involution property only
        approximately, hence validation defaults to off; use
        :meth:`involution_residual` to quantify the mismatch.
        """
        up = TableDelay(T_up, delta_up)
        down = TableDelay(T_down, delta_down)
        return cls(up, down, validate=validate)

    # ------------------------------------------------------------------ #
    # Core quantities
    # ------------------------------------------------------------------ #

    @property
    def delta_up_inf(self) -> float:
        """Finite limit of ``delta_up`` for large ``T``."""
        return self.delta_up.delta_inf()

    @property
    def delta_down_inf(self) -> float:
        """Finite limit of ``delta_down`` for large ``T``."""
        return self.delta_down.delta_inf()

    @property
    def delta_min(self) -> float:
        """The unique positive ``delta_min`` with
        ``delta_up(-delta_min) = delta_min = delta_down(-delta_min)`` (Lemma 1).

        For exp-channels this equals the pure-delay component ``t_p``.
        """
        if self._delta_min is None:
            self._delta_min = self._solve_delta_min()
        return self._delta_min

    def _solve_delta_min(self) -> float:
        root_up = self._fixed_point(self.delta_up)
        root_down = self._fixed_point(self.delta_down)
        scale = max(abs(root_up), abs(root_down), 1e-12)
        if abs(root_up - root_down) > 0.25 * scale:
            # For exact involution pairs both delay functions share the fixed
            # point (Lemma 1); a gross mismatch indicates an invalid pair.
            # Measured/interpolated pairs are allowed a modest discrepancy and
            # get the average.
            raise InvolutionError(
                f"delta_min mismatch between delta_up ({root_up:g}) and "
                f"delta_down ({root_down:g}); pair violates the involution property"
            )
        return 0.5 * (root_up + root_down)

    def _fixed_point(self, delay: DelayFunction) -> float:
        """Solve ``delay(-d) = d`` for the unique positive ``d``."""

        def equation(d: float) -> float:
            value = delay(-d)
            if not math.isfinite(value):
                return -math.inf
            return value - d

        lo = 0.0
        if equation(lo) <= 0:
            raise InvolutionError(
                "channel is not strictly causal: delta(0) <= 0, no positive delta_min"
            )
        # The root lies before the pole of delay(-d): cap d below the point
        # where -d leaves the domain (and below the partner's delta_inf).
        cap = -delay.domain_low()
        if not math.isfinite(cap) or cap <= 0:
            cap = max(10.0 * delay.delta_inf(), 1.0)
        hi = cap * (1.0 - 1e-12)
        shrink = 0
        while not math.isfinite(delay(-hi)) or equation(hi) >= 0:
            if equation(hi) >= 0 and math.isfinite(delay(-hi)):
                # Function still positive near the pole: expand the cap (can
                # only happen for delay functions without a finite pole).
                hi = hi * 2.0 + 1.0
            else:
                hi = lo + 0.999 * (hi - lo)
            shrink += 1
            if shrink > 200:
                raise InvolutionError("could not bracket delta_min")
        return float(optimize.brentq(equation, lo, hi, xtol=1e-14, rtol=1e-13))

    def derivative_up(self, T: float) -> float:
        """``delta_up'(T)``."""
        return self.delta_up.derivative(T)

    def derivative_down(self, T: float) -> float:
        """``delta_down'(T)``."""
        return self.delta_down.derivative(T)

    # ------------------------------------------------------------------ #
    # Involution property
    # ------------------------------------------------------------------ #

    def involution_residual(self, T_values: Optional[Iterable[float]] = None) -> float:
        """Maximum absolute residual of the involution property.

        Evaluates ``|-delta_up(-delta_down(T)) - T|`` (and the symmetric
        expression) on a set of test points.  Near the saturation of the
        inner delay function the outer function operates close to its pole,
        where floating-point noise in the inner value is magnified by the
        outer derivative; the raw residual is therefore divided by that
        sensitivity (which equals ``1/delta'(T)`` by Lemma 1), yielding a
        well-conditioned measure equivalent to the error in delay space.
        """
        if T_values is None:
            T_values = self._default_test_points()
        worst = 0.0
        for T in T_values:
            d_down = self.delta_down(T)
            if math.isfinite(d_down) and -d_down > self.delta_up.domain_low():
                error = abs(-self.delta_up(-d_down) - T)
                sensitivity = max(abs(self.delta_up.derivative(-d_down)), 1.0)
                worst = max(worst, error / sensitivity)
            d_up = self.delta_up(T)
            if math.isfinite(d_up) and -d_up > self.delta_down.domain_low():
                error = abs(-self.delta_down(-d_up) - T)
                sensitivity = max(abs(self.delta_down.derivative(-d_up)), 1.0)
                worst = max(worst, error / sensitivity)
        return worst

    def satisfies_involution(self, tolerance: Optional[float] = None) -> bool:
        """True if the involution property holds up to ``tolerance``."""
        tol = self.tolerance if tolerance is None else tolerance
        return self.involution_residual() <= tol

    def _default_test_points(self) -> np.ndarray:
        scale = max(self.delta_up_inf, self.delta_down_inf, 1e-9)
        low = max(self.delta_up.domain_low(), self.delta_down.domain_low())
        start = low + 0.05 * scale if math.isfinite(low) else -2.0 * scale
        return np.linspace(start, 10.0 * scale, 41)

    def _validate(self, strict_causality_required: bool) -> None:
        if not math.isfinite(self.delta_up_inf) or not math.isfinite(self.delta_down_inf):
            raise InvolutionError("involution delay functions must have finite limits")
        if strict_causality_required:
            if self.delta_up(0.0) <= 0.0 or self.delta_down(0.0) <= 0.0:
                raise InvolutionError(
                    "involution channel must be strictly causal: delta(0) > 0"
                )
        # Monotonicity spot check.
        for func in (self.delta_up, self.delta_down):
            pts = self._default_test_points()
            vals = [func(float(t)) for t in pts]
            finite = [(t, v) for t, v in zip(pts, vals) if math.isfinite(v)]
            for (t1, v1), (t2, v2) in zip(finite, finite[1:]):
                if v2 < v1 - 1e-9 * max(1.0, abs(v1)):
                    raise InvolutionError(
                        f"delay function {func!r} is not increasing between "
                        f"T={t1:g} and T={t2:g}"
                    )
        residual = self.involution_residual()
        scale = max(self.delta_up_inf, self.delta_down_inf, 1.0)
        if residual > max(self.tolerance, 1e-6 * scale):
            raise InvolutionError(
                f"involution property violated: max residual {residual:g}"
            )

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #

    def swapped(self) -> "InvolutionPair":
        """Return the pair with up and down roles exchanged.

        This is the delay pair seen by an *inverting* gate's output, where
        a rising input edge produces a falling output edge.
        """
        return InvolutionPair(
            self.delta_down, self.delta_up, validate=False, tolerance=self.tolerance
        )

    def describe(self) -> str:
        """Human-readable summary of the key channel quantities."""
        return (
            f"InvolutionPair(delta_min={self.delta_min:.6g}, "
            f"delta_up_inf={self.delta_up_inf:.6g}, "
            f"delta_down_inf={self.delta_down_inf:.6g})"
        )

    def __repr__(self) -> str:
        return f"InvolutionPair(up={self.delta_up!r}, down={self.delta_down!r})"


def _involution_partner(delta: DelayFunction) -> DelayFunction:
    """Return the unique partner forced by the involution property.

    If ``delta`` is the up-delay, the partner is the down-delay
    ``T -> -delta^{-1}(-T)`` (and symmetrically).  The partner's limit is
    ``-domain_low`` of ``delta`` and its domain lower end is
    ``-delta_inf`` of ``delta``.
    """

    def partner(T: float) -> float:
        return -delta.inverse(-T)

    def partner_derivative(T: float) -> float:
        x = delta.inverse(-T)
        d = delta.derivative(x)
        if d == 0:
            return math.inf
        return 1.0 / d

    partner_inf = -delta.domain_low()
    partner_domain_low = -delta.delta_inf()
    if not math.isfinite(partner_inf):
        raise InvolutionError(
            "cannot build involution partner: delay function has an unbounded domain "
            "towards -inf (its partner would have an infinite delta_inf)"
        )
    return FunctionalDelay(
        partner,
        delta_inf=partner_inf,
        domain_low=partner_domain_low,
        derivative=partner_derivative,
        name="InvolutionPartner",
    )


def exp_channel_pair(tau: float, t_p: float, v_th: float = 0.5) -> InvolutionPair:
    """Convenience alias for :meth:`InvolutionPair.exp_channel`."""
    return InvolutionPair.exp_channel(tau, t_p, v_th)
