"""Non-faithful baseline delay channels.

The paper motivates the (eta-)involution model by the non-faithfulness of
the delay models used in industrial simulators:

* **pure delay** -- a constant transport delay (optionally different per
  transition polarity),
* **inertial delay** (Unger 1971) -- a constant delay plus suppression of
  input pulses shorter than a window ``Delta``,
* **Degradation Delay Model (DDM)** (Bellido-Díaz et al. 2000) -- a bounded
  single-history channel whose delay shrinks for closely spaced
  transitions, gradually attenuating glitch trains.

Függer et al. (IEEE TC 2016) proved that every *bounded* single-history
channel -- which includes all three above -- yields a non-faithful circuit
model with respect to Short-Pulse Filtration.  These baselines are
implemented here so the benchmark harness can reproduce the qualitative
comparison (who filters which glitch trains, and how fast).
"""

from __future__ import annotations

import math
from typing import Optional

from .channel import Channel
from .transitions import Signal, Transition

__all__ = [
    "PureDelayChannel",
    "InertialDelayChannel",
    "DegradationDelayChannel",
    "remove_short_pulses",
]


def remove_short_pulses(signal: Signal, min_width: float) -> Signal:
    """Iteratively remove pulses (of either polarity) shorter than ``min_width``.

    Removing a short pulse merges its neighbours, which may create a new
    short pulse; the procedure repeats until no transition pair is closer
    than ``min_width``.  This is the idealised inertial-delay filter.
    """
    times = [t.time for t in signal.transitions]
    values = [t.value for t in signal.transitions]
    changed = True
    while changed and len(times) >= 2:
        changed = False
        for i in range(len(times) - 1):
            if times[i + 1] - times[i] < min_width:
                del times[i : i + 2]
                del values[i : i + 2]
                changed = True
                break
    transitions = [Transition(t, v) for t, v in zip(times, values)]
    return Signal(signal.initial_value, transitions, allow_negative_times=True)


class PureDelayChannel(Channel):
    """Constant transport delay, optionally asymmetric per output polarity.

    With equal rising/falling delays the channel never produces non-FIFO
    transitions; with asymmetric delays short pulses may still cancel.
    """

    def __init__(
        self,
        delay: float,
        falling_delay: Optional[float] = None,
        *,
        inverting: bool = False,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(inverting=inverting, name=name)
        if delay < 0 or (falling_delay is not None and falling_delay < 0):
            raise ValueError("pure delays must be non-negative")
        self.rising_delay = float(delay)
        self.falling_delay = float(delay if falling_delay is None else falling_delay)

    def delay_for(self, T: float, rising_output: bool, index: int, time: float) -> float:
        return self.rising_delay if rising_output else self.falling_delay

    def __repr__(self) -> str:
        return (
            f"PureDelayChannel(rising={self.rising_delay:g}, "
            f"falling={self.falling_delay:g}, inverting={self.inverting})"
        )


class InertialDelayChannel(Channel):
    """Constant delay plus suppression of pulses shorter than ``window``.

    An input transition only propagates if no opposite transition follows
    within ``window``; equivalently, input pulses shorter than ``window``
    are removed before applying the transport delay.  This is the model
    used (with per-gate windows) by VITAL/Verilog inertial delays.

    The channel trivially "solves" bounded-time Short-Pulse Filtration,
    which no physical circuit can -- the root of its non-faithfulness.
    """

    def __init__(
        self,
        delay: float,
        window: float,
        *,
        inverting: bool = False,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(inverting=inverting, name=name)
        if delay < 0:
            raise ValueError("delay must be non-negative")
        if window < 0:
            raise ValueError("window must be non-negative")
        self.delay = float(delay)
        self.window = float(window)

    def delay_for(self, T: float, rising_output: bool, index: int, time: float) -> float:
        return self.delay

    def rejection_window(self) -> float:
        return self.window

    def apply(
        self,
        signal: Signal,
        *,
        mode: str = "transport",
        use_reference_cancellation: bool = False,
    ) -> Signal:
        filtered = remove_short_pulses(signal, self.window)
        transitions = []
        for tr in filtered.transitions:
            value = (1 - tr.value) if self.inverting else tr.value
            transitions.append(Transition(tr.time + self.delay, value))
        initial = self.output_initial_value(filtered.initial_value)
        return Signal(initial, transitions, allow_negative_times=True)

    def __repr__(self) -> str:
        return (
            f"InertialDelayChannel(delay={self.delay:g}, window={self.window:g}, "
            f"inverting={self.inverting})"
        )


class DegradationDelayChannel(Channel):
    """The Degradation Delay Model (DDM) of Bellido-Díaz et al.

    The input-to-output delay degrades for closely spaced transitions::

        delta(T) = delta_nominal * (1 - exp(-(T - T0) / tau_deg))   for T > T0
        delta(T) = 0                                                 otherwise

    ``T`` is the previous-output-to-input delay, ``T0`` the degradation
    onset and ``tau_deg`` the recovery constant.  Because ``delta`` is
    bounded (between 0 and ``delta_nominal``) this is a *bounded*
    single-history channel, hence covered by the non-faithfulness result of
    Függer et al. (IEEE TC 2016); it serves as the closest-competitor
    baseline in the model-comparison benchmarks.
    """

    def __init__(
        self,
        delta_nominal: float,
        tau_deg: float,
        T0: float = 0.0,
        *,
        inverting: bool = False,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(inverting=inverting, name=name)
        if delta_nominal <= 0:
            raise ValueError("nominal delay must be positive")
        if tau_deg <= 0:
            raise ValueError("degradation time constant must be positive")
        self.delta_nominal = float(delta_nominal)
        self.tau_deg = float(tau_deg)
        self.T0 = float(T0)

    def delay_for(self, T: float, rising_output: bool, index: int, time: float) -> float:
        if math.isinf(T) and T > 0:
            return self.delta_nominal
        if T <= self.T0:
            return 0.0
        return self.delta_nominal * (1.0 - math.exp(-(T - self.T0) / self.tau_deg))

    def __repr__(self) -> str:
        return (
            f"DegradationDelayChannel(delta_nominal={self.delta_nominal:g}, "
            f"tau_deg={self.tau_deg:g}, T0={self.T0:g}, inverting={self.inverting})"
        )
