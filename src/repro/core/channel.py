"""Channel abstractions and the output-transition-generation algorithm.

A *channel* maps an input signal to an output signal.  Single-history
channels (pure, inertial, DDM, involution, eta-involution) all follow the
same two-phase algorithm described in Section II of the paper:

1. *Tentative phase*: every input transition at time ``t_n`` is assigned a
   tentative output transition at ``t_n + delta_n``, where ``delta_n``
   depends on the previous-output-to-input delay
   ``T_n = t_n - (t_{n-1} + delta_{n-1})`` (using the *tentative* previous
   output transition, regardless of later cancellation).

2. *Cancellation phase*: tentative output transitions in non-FIFO order
   (``n < m`` but ``t_n + delta_n >= t_m + delta_m``) cancel.  The paper
   states the rule as "mark both as cancelled"; operationally (and in the
   authors' VHDL/ModelSim realisation) this is *transport cancellation*:
   scheduling a new transition removes all pending transitions at
   later-or-equal times, and transitions that do not change the output
   value are suppressed.  Both readings coincide whenever cancellations
   only involve consecutive pairs -- the only case arising in the paper's
   analysis -- and transport cancellation additionally guarantees a
   well-formed (alternating) output signal for arbitrary overlap patterns.

The algorithm itself lives in :class:`~repro.engine.kernel.ChannelKernel`
(the *same* kernel the event-driven simulator executes incrementally);
this module defines the :class:`Channel` interface on top of it and
re-exports the three cancellation resolvers:

* :func:`transport_resolve` -- the default transport semantics,
* :func:`cancel_non_fifo_reference` -- the literal O(n^2) pairwise marking,
* :func:`cancel_non_fifo` -- an O(n) sweep equivalent to the pairwise
  marking (two-sided records).

Property-based tests check that all three agree on the pairwise-consecutive
cases used by the theory.
"""

from __future__ import annotations

from typing import List, Optional

# Re-exported from the engine kernel: the single home of the cancellation
# semantics shared with the event-driven simulator.
from ..engine.kernel import (
    ChannelKernel,
    PendingTransition,
    cancel_non_fifo,
    cancel_non_fifo_reference,
    pending_to_signal,
    transport_resolve,
)
from .transitions import Signal

__all__ = [
    "PendingTransition",
    "Channel",
    "ZeroDelayChannel",
    "cancel_non_fifo",
    "cancel_non_fifo_reference",
    "transport_resolve",
    "pending_to_signal",
]


class Channel:
    """Base class of all channels.

    Subclasses implement :meth:`delay_for`, which assigns the delay
    ``delta_n`` to every input transition; the shared
    :class:`~repro.engine.kernel.ChannelKernel` takes care of the iteration
    over the input signal, bookkeeping of the previous tentative output
    transition, cancellation, and assembly of the output signal.

    Parameters
    ----------
    inverting:
        If True, the channel logically inverts its input (an inverter's
        combined gate+channel view).  Delay polarity is chosen by the
        *output* transition polarity, matching the convention of the paper
        (``delta_up`` produces rising *output* transitions).
    """

    def __init__(self, *, inverting: bool = False, name: Optional[str] = None) -> None:
        self.inverting = bool(inverting)
        self.name = name or type(self).__name__

    # -- interface ------------------------------------------------------ #

    def delay_for(self, T: float, rising_output: bool, index: int, time: float) -> float:
        """Return the delay ``delta_n`` for one transition.

        ``T`` is the previous-output-to-input delay, ``rising_output``
        states whether the generated output transition is rising,
        ``index``/``time`` identify the input transition (used by
        stateful/adversarial channels).
        """
        raise NotImplementedError  # pragma: no cover - interface

    def initial_delay(self) -> float:
        """The delay ``delta_0`` associated with the initial transition.

        The paper's algorithm sets ``delta_0 = 0`` with ``t_0 = -inf``;
        subclasses normally keep this.
        """
        return 0.0

    def rejection_window(self) -> float:
        """Width of the inertial pulse-rejection window (0 for no rejection).

        The engine removes output pulses narrower than this window (both of
        their transitions), which is how inertial delay channels implement
        glitch suppression incrementally.
        """
        return 0.0

    def reset(self) -> None:
        """Reset per-evaluation state (adversaries, RNGs)."""

    # -- evaluation ------------------------------------------------------ #

    def output_initial_value(self, input_initial_value: int) -> int:
        """Initial value of the output signal."""
        if self.inverting:
            return 1 - input_initial_value
        return input_initial_value

    def pending_transitions(self, signal: Signal) -> List[PendingTransition]:
        """Run the tentative phase of the algorithm on ``signal``."""
        kernel = ChannelKernel(self, input_initial_value=signal.initial_value)
        return [
            kernel.tentative(transition.time, transition.value)
            for transition in signal
        ]

    def __call__(self, signal: Signal, **kwargs) -> Signal:
        """Apply the channel function to an input signal."""
        return self.apply(signal, **kwargs)

    def apply(
        self,
        signal: Signal,
        *,
        mode: str = "transport",
        use_reference_cancellation: bool = False,
    ) -> Signal:
        """Apply the channel function to ``signal`` and return the output."""
        pending = self.pending_transitions(signal)
        return pending_to_signal(
            self.output_initial_value(signal.initial_value),
            pending,
            mode=mode,
            use_reference_cancellation=use_reference_cancellation,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class ZeroDelayChannel(Channel):
    """The identity channel (zero delay).

    The paper assumes channels connecting circuit input/output ports to be
    zero-delay to make circuit composition associative; this class provides
    that channel.  It is not a single-history channel and performs no
    cancellation (it cannot create non-FIFO transitions).
    """

    def delay_for(self, T: float, rising_output: bool, index: int, time: float) -> float:
        return 0.0

    def apply(
        self,
        signal: Signal,
        *,
        mode: str = "transport",
        use_reference_cancellation: bool = False,
    ) -> Signal:
        if not self.inverting:
            return signal
        return signal.inverted()
