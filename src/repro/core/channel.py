"""Channel abstractions and the output-transition-generation algorithm.

A *channel* maps an input signal to an output signal.  Single-history
channels (pure, inertial, DDM, involution, eta-involution) all follow the
same two-phase algorithm described in Section II of the paper:

1. *Tentative phase*: every input transition at time ``t_n`` is assigned a
   tentative output transition at ``t_n + delta_n``, where ``delta_n``
   depends on the previous-output-to-input delay
   ``T_n = t_n - (t_{n-1} + delta_{n-1})`` (using the *tentative* previous
   output transition, regardless of later cancellation).

2. *Cancellation phase*: tentative output transitions in non-FIFO order
   (``n < m`` but ``t_n + delta_n >= t_m + delta_m``) cancel.  The paper
   states the rule as "mark both as cancelled"; operationally (and in the
   authors' VHDL/ModelSim realisation) this is *transport cancellation*:
   scheduling a new transition removes all pending transitions at
   later-or-equal times, and transitions that do not change the output
   value are suppressed.  Both readings coincide whenever cancellations
   only involve consecutive pairs -- the only case arising in the paper's
   analysis -- and transport cancellation additionally guarantees a
   well-formed (alternating) output signal for arbitrary overlap patterns.

Three cancellation resolvers are provided:

* :func:`transport_resolve` -- the default transport semantics,
* :func:`cancel_non_fifo_reference` -- the literal O(n^2) pairwise marking,
* :func:`cancel_non_fifo` -- an O(n) sweep equivalent to the pairwise
  marking (two-sided records).

Property-based tests check that all three agree on the pairwise-consecutive
cases used by the theory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .transitions import Signal, Transition

__all__ = [
    "PendingTransition",
    "Channel",
    "ZeroDelayChannel",
    "cancel_non_fifo",
    "cancel_non_fifo_reference",
    "transport_resolve",
    "pending_to_signal",
]


@dataclass
class PendingTransition:
    """A tentative output transition before cancellation.

    Attributes
    ----------
    input_time:
        Time ``t_n`` of the generating input transition.
    delay:
        The input-to-output delay ``delta_n`` assigned to it (may be
        ``-inf`` when the domain guard of the eta-channel fires).
    value:
        Output value after the transition (same as the input transition's
        value for non-inverting channels).
    T:
        The previous-output-to-input delay used to compute ``delay``.
    eta:
        The adversarial shift included in ``delay`` (0 for deterministic
        channels).
    cancelled:
        Set by the cancellation phase.
    """

    input_time: float
    delay: float
    value: int
    T: float = math.nan
    eta: float = 0.0
    cancelled: bool = False

    @property
    def output_time(self) -> float:
        """The tentative output transition time ``t_n + delta_n``."""
        return self.input_time + self.delay


def cancel_non_fifo_reference(times: Sequence[float]) -> List[bool]:
    """Literal O(n^2) implementation of the cancellation rule.

    ``times[k]`` is the tentative output time of the k-th pending
    transition.  Returns a list of booleans, True meaning *cancelled*.
    A transition is cancelled iff it participates in at least one
    non-FIFO pair (an earlier transition with a later-or-equal output
    time, or a later transition with an earlier-or-equal output time).
    """
    n = len(times)
    cancelled = [False] * n
    for i in range(n):
        for j in range(i + 1, n):
            if times[i] >= times[j]:
                cancelled[i] = True
                cancelled[j] = True
    return cancelled


def cancel_non_fifo(times: Sequence[float]) -> List[bool]:
    """O(n) cancellation sweep equivalent to :func:`cancel_non_fifo_reference`.

    A transition survives iff its output time is strictly larger than every
    earlier output time and strictly smaller than every later output time,
    i.e. it is a strict two-sided record.  Survivors are automatically in
    strictly increasing time order and (because an even number of
    transitions is dropped between consecutive survivors) still alternate
    in value.
    """
    n = len(times)
    if n == 0:
        return []
    prefix_max = [-math.inf] * n
    running = -math.inf
    for i, t in enumerate(times):
        prefix_max[i] = running
        running = max(running, t)
    suffix_min = [math.inf] * n
    running = math.inf
    for i in range(n - 1, -1, -1):
        suffix_min[i] = running
        running = min(running, times[i])
    return [not (prefix_max[i] < times[i] < suffix_min[i]) for i in range(n)]


def transport_resolve(
    initial_value: int, pending: Sequence[PendingTransition]
) -> Signal:
    """Resolve cancellations with transport (VHDL-style) semantics.

    Tentative transitions are processed in generation order; scheduling a
    new transition at time ``s`` (generated by an input transition at time
    ``t``) removes all still-queued transitions with time ``>= s`` that have
    not yet *matured* (their time is ``> t``, i.e. they would still be
    pending in an online simulation).  After processing, queued transitions
    that do not change the output value are suppressed, which yields a
    well-formed alternating signal.  The maturity condition makes this
    offline resolution agree exactly with the incremental resolution of the
    event-driven simulator.
    """
    queue: List[PendingTransition] = []
    for p in pending:
        while (
            queue
            and queue[-1].output_time >= p.output_time
            and queue[-1].output_time > p.input_time
        ):
            queue.pop().cancelled = True
        queue.append(p)
    value = initial_value
    transitions: List[Transition] = []
    for p in queue:
        if p.value == value or not math.isfinite(p.output_time):
            p.cancelled = True
            continue
        p.cancelled = False
        transitions.append(Transition(p.output_time, p.value))
        value = p.value
    return Signal(initial_value, transitions, allow_negative_times=True)


def pending_to_signal(
    initial_value: int,
    pending: Sequence[PendingTransition],
    *,
    mode: str = "transport",
    use_reference_cancellation: bool = False,
) -> Signal:
    """Apply the cancellation phase and assemble the output signal.

    ``mode`` selects the resolver: ``"transport"`` (default, well-formed for
    arbitrary overlaps), ``"record"`` (O(n) two-sided-record sweep of the
    literal pairwise rule) or ``"pairwise"`` (O(n^2) literal reference).
    ``use_reference_cancellation=True`` is a legacy alias for
    ``mode="pairwise"``.
    """
    if use_reference_cancellation:
        mode = "pairwise"
    if mode == "transport":
        return transport_resolve(initial_value, pending)
    times = [p.output_time for p in pending]
    if mode == "pairwise":
        cancelled = cancel_non_fifo_reference(times)
    elif mode == "record":
        cancelled = cancel_non_fifo(times)
    else:
        raise ValueError(f"unknown cancellation mode {mode!r}")
    for p, c in zip(pending, cancelled):
        p.cancelled = c
    transitions = [
        Transition(p.output_time, p.value)
        for p in pending
        if not p.cancelled and math.isfinite(p.output_time)
    ]
    return Signal(initial_value, transitions, allow_negative_times=True)


class Channel:
    """Base class of all channels.

    Subclasses implement :meth:`tentative_delays`, which assigns the delay
    ``delta_n`` to every input transition; the shared machinery here takes
    care of the iteration over the input signal, bookkeeping of the
    previous tentative output transition, cancellation, and assembly of the
    output signal.

    Parameters
    ----------
    inverting:
        If True, the channel logically inverts its input (an inverter's
        combined gate+channel view).  Delay polarity is chosen by the
        *output* transition polarity, matching the convention of the paper
        (``delta_up`` produces rising *output* transitions).
    """

    def __init__(self, *, inverting: bool = False, name: Optional[str] = None) -> None:
        self.inverting = bool(inverting)
        self.name = name or type(self).__name__

    # -- interface ------------------------------------------------------ #

    def delay_for(self, T: float, rising_output: bool, index: int, time: float) -> float:
        """Return the delay ``delta_n`` for one transition.

        ``T`` is the previous-output-to-input delay, ``rising_output``
        states whether the generated output transition is rising,
        ``index``/``time`` identify the input transition (used by
        stateful/adversarial channels).
        """
        raise NotImplementedError  # pragma: no cover - interface

    def initial_delay(self) -> float:
        """The delay ``delta_0`` associated with the initial transition.

        The paper's algorithm sets ``delta_0 = 0`` with ``t_0 = -inf``;
        subclasses normally keep this.
        """
        return 0.0

    def rejection_window(self) -> float:
        """Width of the inertial pulse-rejection window (0 for no rejection).

        The event-driven simulator removes output pulses narrower than this
        window (both of their transitions), which is how inertial delay
        channels implement glitch suppression incrementally.
        """
        return 0.0

    def reset(self) -> None:
        """Reset per-evaluation state (adversaries, RNGs)."""

    # -- evaluation ------------------------------------------------------ #

    def output_initial_value(self, input_initial_value: int) -> int:
        """Initial value of the output signal."""
        if self.inverting:
            return 1 - input_initial_value
        return input_initial_value

    def pending_transitions(self, signal: Signal) -> List[PendingTransition]:
        """Run the tentative phase of the algorithm on ``signal``."""
        self.reset()
        pending: List[PendingTransition] = []
        previous_input_time = -math.inf
        previous_delay = self.initial_delay()
        for index, transition in enumerate(signal):
            t_n = transition.time
            out_value = (1 - transition.value) if self.inverting else transition.value
            rising_output = out_value == 1
            if math.isinf(previous_input_time):
                T = math.inf
            else:
                T = t_n - previous_input_time - previous_delay
            delay = self.delay_for(T, rising_output, index, t_n)
            pending.append(
                PendingTransition(
                    input_time=t_n, delay=delay, value=out_value, T=T
                )
            )
            previous_input_time = t_n
            previous_delay = delay
        return pending

    def __call__(self, signal: Signal, **kwargs) -> Signal:
        """Apply the channel function to an input signal."""
        return self.apply(signal, **kwargs)

    def apply(
        self,
        signal: Signal,
        *,
        mode: str = "transport",
        use_reference_cancellation: bool = False,
    ) -> Signal:
        """Apply the channel function to ``signal`` and return the output."""
        pending = self.pending_transitions(signal)
        return pending_to_signal(
            self.output_initial_value(signal.initial_value),
            pending,
            mode=mode,
            use_reference_cancellation=use_reference_cancellation,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class ZeroDelayChannel(Channel):
    """The identity channel (zero delay).

    The paper assumes channels connecting circuit input/output ports to be
    zero-delay to make circuit composition associative; this class provides
    that channel.  It is not a single-history channel and performs no
    cancellation (it cannot create non-FIFO transitions).
    """

    def delay_for(self, T: float, rising_output: bool, index: int, time: float) -> float:
        return 0.0

    def apply(
        self,
        signal: Signal,
        *,
        mode: str = "transport",
        use_reference_cancellation: bool = False,
    ) -> Signal:
        if not self.inverting:
            return signal
        return signal.inverted()
