"""Delay functions for single-history channels.

A single-history channel is characterised by a delay function
``delta: (T_low, inf) -> (-inf, delta_inf)`` mapping the
previous-output-to-input time ``T`` to the input-to-output delay
``delta(T)`` (paper, Fig. 1).  Involution channels use a *pair* of such
functions (one per transition polarity) that satisfy the involution
property; this module provides the individual delay functions, the
:class:`InvolutionPair` lives in :mod:`repro.core.involution`.

Provided implementations:

* :class:`ExpDelay` -- the closed-form delay of a first-order RC stage
  switching at a threshold voltage (the paper's *exp-channel*),
* :class:`TableDelay` -- monotone interpolation of measured ``(T, delta)``
  samples (used for characterised delay functions, cf. Fig. 7),
* :class:`ShiftedDelay` / :class:`ScaledDelay` -- affine re-parametrisations,
* :class:`ConstantDelay` -- the degenerate pure-delay function (baseline).
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DelayFunction",
    "ExpDelay",
    "TableDelay",
    "ShiftedDelay",
    "ScaledDelay",
    "ConstantDelay",
    "FunctionalDelay",
    "numeric_derivative",
    "numeric_inverse",
]


def numeric_derivative(func: Callable[[float], float], x: float, h: float = 1e-6) -> float:
    """Central finite-difference derivative of ``func`` at ``x``."""
    return (func(x + h) - func(x - h)) / (2.0 * h)


def numeric_inverse(
    func: Callable[[float], float],
    y: float,
    lo: float,
    hi: float,
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> float:
    """Invert a strictly increasing ``func`` on ``[lo, hi]`` by bisection.

    Returns ``x`` with ``func(x) == y`` up to ``tol``.  Used to build the
    down-delay of an involution pair from its up-delay (and vice versa)
    when no closed form is available.
    """
    flo, fhi = func(lo), func(hi)
    if not (flo <= y <= fhi):
        raise ValueError(
            f"target {y} outside function range [{flo}, {fhi}] on [{lo}, {hi}]"
        )
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        fmid = func(mid)
        if abs(fmid - y) <= tol or (hi - lo) <= tol:
            return mid
        if fmid < y:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


class DelayFunction:
    """A strictly increasing, concave delay function ``delta(T)``.

    Subclasses must implement :meth:`__call__` and :meth:`delta_inf` (the
    finite limit ``lim_{T -> inf} delta(T)``) and :meth:`domain_low` (the
    open lower end of the domain; ``delta`` tends to ``-inf`` there).
    """

    def __call__(self, T: float) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def delta_inf(self) -> float:
        """The finite limit of ``delta(T)`` as ``T -> inf``."""
        raise NotImplementedError  # pragma: no cover - interface

    def domain_low(self) -> float:
        """Open lower bound of the domain (``delta -> -inf`` there)."""
        raise NotImplementedError  # pragma: no cover - interface

    # ------------------------------------------------------------------ #
    # Generic numeric helpers
    # ------------------------------------------------------------------ #

    def derivative(self, T: float, h: float = 1e-6) -> float:
        """Derivative ``delta'(T)``; numeric unless overridden."""
        low = self.domain_low()
        if math.isfinite(low):
            h = min(h, max((T - low) / 4.0, 1e-12))
        return numeric_derivative(self, T, h)

    def inverse(self, value: float) -> float:
        """Return ``T`` such that ``delta(T) == value``.

        The generic implementation brackets the root starting from the
        domain and expands towards ``+inf``.
        """
        if value >= self.delta_inf():
            raise ValueError(
                f"value {value} is not attained (delta_inf = {self.delta_inf()})"
            )
        low = self.domain_low()
        if math.isfinite(low):
            lo = low + 1e-12 * max(1.0, abs(low))
            while self(lo) > value:
                lo = low + (lo - low) / 2.0
                if lo - low < 1e-300:
                    raise ValueError("could not bracket inverse near domain boundary")
        else:
            lo = -1.0
            while self(lo) > value:
                lo *= 2.0
                if lo < -1e18:
                    raise ValueError("could not bracket inverse towards -inf")
        hi = max(lo + 1.0, 1.0)
        while self(hi) < value:
            hi = hi * 2.0 + 1.0
            if hi > 1e18:
                raise ValueError("could not bracket inverse towards +inf")
        return numeric_inverse(self, value, lo, hi)

    def is_strictly_causal_at_zero(self) -> bool:
        """True if ``delta(0) > 0`` (strict causality at T = 0)."""
        return self(0.0) > 0.0

    def sample(self, times: Sequence[float]) -> np.ndarray:
        """Evaluate the delay function on an array of ``T`` values."""
        return np.array([self(float(t)) for t in times], dtype=float)

    def describe(self) -> str:
        """Short human-readable description (used in reports)."""
        return (
            f"{type(self).__name__}(delta(0)={self(0.0):.6g}, "
            f"delta_inf={self.delta_inf():.6g}, domain_low={self.domain_low():.6g})"
        )


class ExpDelay(DelayFunction):
    """Delay of a first-order RC stage with switching threshold.

    This is the paper's *exp-channel* delay.  With RC constant ``tau``,
    pure-delay component ``t_p`` and normalised threshold ``v_th``
    (``V_th / V_DD``), the rising delay is::

        delta_up(T)   = tau * ln(1 - exp(-(T + t_p - tau*ln(v_th)) / tau))
                        + t_p - tau * ln(1 - v_th)

    and the falling delay is obtained by swapping ``v_th`` and
    ``1 - v_th``.  Pass ``rising=True`` for ``delta_up`` and
    ``rising=False`` for ``delta_down``; equivalently, ``ExpDelay`` with
    threshold ``v_th`` and ``ExpDelay`` with threshold ``1 - v_th`` form an
    involution pair.

    For ``v_th = 1/2`` the pair is symmetric and ``delta_min = t_p``.
    """

    def __init__(self, tau: float, t_p: float, v_th: float = 0.5, rising: bool = True) -> None:
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        if not (0.0 < v_th < 1.0):
            raise ValueError(f"normalised threshold must be in (0, 1), got {v_th}")
        if t_p <= 0:
            raise ValueError(f"pure delay component t_p must be positive, got {t_p}")
        self.tau = float(tau)
        self.t_p = float(t_p)
        self.v_th = float(v_th)
        self.rising = bool(rising)
        # The threshold that enters the exponential: v_th for the rising
        # delay, 1 - v_th for the falling delay.
        self._v_eff = self.v_th if rising else 1.0 - self.v_th
        # Per-polarity constants, hoisted out of the per-transition calls:
        # delta(T) = tau * ln(1 - exp(-(T + shift) / tau)) + offset with
        # shift = t_p - tau*ln(v_eff) and offset = t_p - tau*ln(1 - v_eff)
        # (the latter is also delta_inf, the former's negative domain_low).
        self._shift = self.t_p - self.tau * math.log(self._v_eff)
        self._offset = self.t_p - self.tau * math.log(1.0 - self._v_eff)
        self._inv_tau = 1.0 / self.tau

    # -- closed forms --------------------------------------------------- #

    def __call__(self, T: float) -> float:
        argument = 1.0 - math.exp(-(T + self._shift) * self._inv_tau)
        if argument <= 0.0:
            return -math.inf
        return self.tau * math.log(argument) + self._offset

    def delta_inf(self) -> float:
        return self._offset

    def domain_low(self) -> float:
        # delta -> -inf as T -> -(t_p - tau*ln(v_eff)) which equals the
        # negative of the partner delay's delta_inf.
        return -self._shift

    def derivative(self, T: float, h: float = 1e-6) -> float:
        e = math.exp(-(T + self._shift) * self._inv_tau)
        if e >= 1.0:
            return math.inf
        return e / (1.0 - e)

    def inverse(self, value: float) -> float:
        # Solve value = tau*ln(1 - exp(-(T + t_p - tau*ln(v))/tau)) + t_p - tau*ln(1-v)
        v = self._v_eff
        tau = self.tau
        inner = math.exp((value - self.t_p + tau * math.log(1.0 - v)) / tau)
        if inner >= 1.0:
            raise ValueError(f"value {value} >= delta_inf {self.delta_inf()}")
        return -tau * math.log(1.0 - inner) - self.t_p + tau * math.log(v)

    def partner(self) -> "ExpDelay":
        """The delay function of the opposite polarity (same physical stage)."""
        return ExpDelay(self.tau, self.t_p, self.v_th, rising=not self.rising)

    def __repr__(self) -> str:
        kind = "up" if self.rising else "down"
        return f"ExpDelay({kind}, tau={self.tau:g}, t_p={self.t_p:g}, v_th={self.v_th:g})"


class ConstantDelay(DelayFunction):
    """A constant (pure) delay, ``delta(T) = d`` for all ``T``.

    This is *not* an involution delay (it has no pole), but it is used by
    the non-faithful baseline channels in :mod:`repro.core.baselines`.
    """

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError("pure delay must be non-negative")
        self.delay = float(delay)

    def __call__(self, T: float) -> float:
        return self.delay

    def delta_inf(self) -> float:
        return self.delay

    def domain_low(self) -> float:
        return -math.inf

    def derivative(self, T: float, h: float = 1e-6) -> float:
        return 0.0

    def __repr__(self) -> str:
        return f"ConstantDelay({self.delay:g})"


class ShiftedDelay(DelayFunction):
    """``delta(T) = base(T - shift_T) + shift_delta``.

    Useful for re-centring a characterised delay function, e.g. to impose a
    particular ``delta_min`` or pure-delay component.
    """

    def __init__(self, base: DelayFunction, shift_T: float = 0.0, shift_delta: float = 0.0) -> None:
        self.base = base
        self.shift_T = float(shift_T)
        self.shift_delta = float(shift_delta)

    def __call__(self, T: float) -> float:
        return self.base(T - self.shift_T) + self.shift_delta

    def delta_inf(self) -> float:
        return self.base.delta_inf() + self.shift_delta

    def domain_low(self) -> float:
        return self.base.domain_low() + self.shift_T

    def derivative(self, T: float, h: float = 1e-6) -> float:
        return self.base.derivative(T - self.shift_T, h)

    def __repr__(self) -> str:
        return f"ShiftedDelay({self.base!r}, dT={self.shift_T:g}, dD={self.shift_delta:g})"


class ScaledDelay(DelayFunction):
    """``delta(T) = scale * base(T / scale)`` -- a time-unit rescaling.

    Rescaling preserves the involution property, strict causality, and
    concavity, so it is the canonical way to convert a characterised delay
    function between units (e.g. ps to ns).
    """

    def __init__(self, base: DelayFunction, scale: float) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.base = base
        self.scale = float(scale)

    def __call__(self, T: float) -> float:
        return self.scale * self.base(T / self.scale)

    def delta_inf(self) -> float:
        return self.scale * self.base.delta_inf()

    def domain_low(self) -> float:
        return self.scale * self.base.domain_low()

    def derivative(self, T: float, h: float = 1e-6) -> float:
        return self.base.derivative(T / self.scale, h / self.scale)

    def __repr__(self) -> str:
        return f"ScaledDelay({self.base!r}, scale={self.scale:g})"


class FunctionalDelay(DelayFunction):
    """Wrap an arbitrary callable as a delay function.

    The caller is responsible for the callable being strictly increasing
    and concave on ``(domain_low, inf)`` with limit ``delta_inf``.
    """

    def __init__(
        self,
        func: Callable[[float], float],
        delta_inf: float,
        domain_low: float,
        derivative: Optional[Callable[[float], float]] = None,
        name: str = "FunctionalDelay",
    ) -> None:
        self._func = func
        self._delta_inf = float(delta_inf)
        self._domain_low = float(domain_low)
        self._derivative = derivative
        self._name = name

    def __call__(self, T: float) -> float:
        if T <= self._domain_low:
            return -math.inf
        return self._func(T)

    def delta_inf(self) -> float:
        return self._delta_inf

    def domain_low(self) -> float:
        return self._domain_low

    def derivative(self, T: float, h: float = 1e-6) -> float:
        if self._derivative is not None:
            return self._derivative(T)
        return super().derivative(T, h)

    def __repr__(self) -> str:
        return f"{self._name}(delta_inf={self._delta_inf:g})"


class TableDelay(DelayFunction):
    """Delay function interpolated from measured ``(T, delta)`` samples.

    The characterisation procedure of :mod:`repro.fitting.characterize`
    produces discrete samples of the delay function of a real (here:
    analog-simulated) gate; this class turns them into a usable
    :class:`DelayFunction` by monotone linear interpolation with an
    exponential saturating tail towards ``delta_inf`` on the right and a
    logarithmic divergence towards ``-inf`` on the left of the sampled
    range.

    Parameters
    ----------
    T_samples, delta_samples:
        Strictly increasing sample points.  ``delta_samples`` must be
        strictly increasing as well (the physical delay function is).
    delta_inf:
        Saturation value; defaults to a small margin above the largest
        sample.
    """

    def __init__(
        self,
        T_samples: Sequence[float],
        delta_samples: Sequence[float],
        delta_inf: Optional[float] = None,
    ) -> None:
        T = np.asarray(T_samples, dtype=float)
        d = np.asarray(delta_samples, dtype=float)
        if T.ndim != 1 or d.ndim != 1 or len(T) != len(d):
            raise ValueError("T_samples and delta_samples must be 1-D of equal length")
        if len(T) < 2:
            raise ValueError("need at least two samples")
        order = np.argsort(T)
        T, d = T[order], d[order]
        if np.any(np.diff(T) <= 0):
            raise ValueError("T samples must be strictly increasing")
        d = np.maximum.accumulate(d)
        eps = 1e-12 * max(1.0, float(np.max(np.abs(d))))
        for i in range(1, len(d)):
            if d[i] <= d[i - 1]:
                d[i] = d[i - 1] + eps
        self.T_samples = T
        self.delta_samples = d
        if delta_inf is None:
            span = float(d[-1] - d[0])
            delta_inf = float(d[-1]) + max(0.05 * span, eps)
        if delta_inf <= d[-1]:
            raise ValueError("delta_inf must exceed the largest delta sample")
        self._delta_inf = float(delta_inf)
        # Right tail: delta(T) = delta_inf - A*exp(-(T - T_last)/tau_tail)
        # matched to value and slope at the last sample.
        self._A = self._delta_inf - float(d[-1])
        slope_right = float((d[-1] - d[-2]) / (T[-1] - T[-2]))
        slope_right = max(slope_right, 1e-15)
        self._tau_tail = self._A / slope_right
        # Left tail: delta(T) = d0 + s0*tau_left*ln(1 + (T - T0)/tau_left)
        # diverges to -inf at T -> T0 - tau_left, matched to slope at T0.
        # The pole is kept at or below -delta(T0) so the extrapolated function
        # remains strictly causal (delta(0) > 0) and has a positive fixed
        # point delta(-d) = d even when the samples do not reach far into the
        # negative-T region.
        slope_left = float((d[1] - d[0]) / (T[1] - T[0]))
        slope_left = max(slope_left, 1e-15)
        self._slope_left = slope_left
        self._tau_left = max(self._A / slope_left, float(T[0]) + float(d[0]), 1e-12)
        self._domain_low = float(T[0]) - self._tau_left
        # Precomputed interpolation tables: per-segment slopes (shared by the
        # scalar bisect path and the vectorized searchsorted path) plus plain
        # Python float lists, which the scalar hot path indexes without any
        # numpy-scalar boxing.
        self._slopes = np.diff(d) / np.diff(T)
        self._T_list = [float(x) for x in T]
        self._d_list = [float(x) for x in d]
        self._slope_list = [float(x) for x in self._slopes]
        self._T0 = float(T[0])
        self._Tn = float(T[-1])
        self._d0 = float(d[0])

    def __call__(self, T: float) -> float:
        if T <= self._domain_low:
            return -math.inf
        if T < self._T0:
            return self._d0 + self._slope_left * self._tau_left * math.log(
                1.0 + (T - self._T0) / self._tau_left
            )
        if T > self._Tn:
            return self._delta_inf - self._A * math.exp(-(T - self._Tn) / self._tau_tail)
        T_list = self._T_list
        i = bisect.bisect_right(T_list, T) - 1
        if i >= len(T_list) - 1:
            return self._d_list[-1]
        return self._d_list[i] + self._slope_list[i] * (T - T_list[i])

    def sample(self, times: Sequence[float]) -> np.ndarray:
        """Vectorized evaluation over an array of ``T`` values.

        One ``np.searchsorted`` against the precomputed slope table replaces
        the per-element Python calls of the generic implementation; the
        extrapolation tails and the ``-inf`` domain guard are applied with
        array masks, matching the scalar path exactly.
        """
        T = np.asarray(times, dtype=float)
        out = np.empty(T.shape, dtype=float)
        below = T <= self._domain_low
        left = ~below & (T < self._T0)
        right = T > self._Tn
        inner = ~(below | left | right)
        out[below] = -math.inf
        # The extrapolation tails go through math.log/math.exp element by
        # element: NumPy's SIMD transcendentals can differ from libm in
        # the last ulp on some hosts, which would break the exact
        # scalar-path match this method advertises.  Tails are a small
        # fraction of any realistic sample grid.
        if np.any(left):
            out[left] = np.fromiter(
                (
                    self._d0
                    + self._slope_left
                    * self._tau_left
                    * math.log(1.0 + (t - self._T0) / self._tau_left)
                    for t in T[left].tolist()
                ),
                dtype=float,
                count=int(np.count_nonzero(left)),
            )
        if np.any(right):
            out[right] = np.fromiter(
                (
                    self._delta_inf
                    - self._A * math.exp(-(t - self._Tn) / self._tau_tail)
                    for t in T[right].tolist()
                ),
                dtype=float,
                count=int(np.count_nonzero(right)),
            )
        if np.any(inner):
            T_inner = T[inner]
            idx = np.searchsorted(self.T_samples, T_inner, side="right") - 1
            # T exactly at the largest sample: the scalar path returns the
            # last sample value directly; interpolating the final segment
            # instead can differ in the last ulp ((d/b)*b != d).
            at_last = idx >= len(self._slopes)
            idx = np.clip(idx, 0, len(self._slopes) - 1)
            values = self.delta_samples[idx] + self._slopes[idx] * (
                T_inner - self.T_samples[idx]
            )
            values[at_last] = self._d_list[-1]
            out[inner] = values
        return out

    def delta_inf(self) -> float:
        return self._delta_inf

    def domain_low(self) -> float:
        return self._domain_low

    def support(self) -> Tuple[float, float]:
        """The sampled ``T`` range (outside it the tails extrapolate)."""
        return float(self.T_samples[0]), float(self.T_samples[-1])

    def __repr__(self) -> str:
        lo, hi = self.support()
        return (
            f"TableDelay({len(self.T_samples)} samples, T in [{lo:g}, {hi:g}], "
            f"delta_inf={self._delta_inf:g})"
        )
