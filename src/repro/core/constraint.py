"""Constraint (C) on the admissible noise of eta-involution channels.

Faithfulness of the eta-involution model (Section IV of the paper) requires
the noise bound of the channel in the SPF storage loop to satisfy::

    (C)    eta_plus + eta_minus < delta_down(-eta_plus) - delta_min

This module provides predicates and helpers around (C):

* :func:`satisfies_constraint_C` -- check a given ``(pair, eta)``,
* :func:`constraint_C_margin` -- signed slack of the inequality,
* :func:`max_eta_minus` -- the largest admissible ``eta_minus`` for a given
  ``eta_plus`` (the dimensioning rule used in Section V of the paper:
  ``eta_minus = delta_down(-eta_plus) - delta_min - eta_plus``),
* :func:`max_symmetric_eta` -- the largest ``eta`` with
  ``eta_plus = eta_minus = eta`` still admissible,
* :func:`admissible_eta_bound` -- construct an :class:`EtaBound` from an
  ``eta_plus`` using the paper's rule, optionally backing off by a safety
  factor so the strict inequality holds.
"""

from __future__ import annotations

import math
from typing import Optional

from scipy import optimize

from .adversary import EtaBound
from .involution import InvolutionPair

__all__ = [
    "constraint_C_margin",
    "satisfies_constraint_C",
    "max_eta_minus",
    "max_symmetric_eta",
    "admissible_eta_bound",
]


def constraint_C_margin(pair: InvolutionPair, eta: EtaBound) -> float:
    """Signed slack of constraint (C).

    Returns ``delta_down(-eta_plus) - delta_min - (eta_plus + eta_minus)``;
    the constraint holds iff the result is strictly positive.
    """
    value = pair.delta_down(-eta.eta_plus)
    if not math.isfinite(value):
        return -math.inf
    return value - pair.delta_min - (eta.eta_plus + eta.eta_minus)


def satisfies_constraint_C(pair: InvolutionPair, eta: EtaBound) -> bool:
    """True iff ``(pair, eta)`` satisfies constraint (C) strictly."""
    return constraint_C_margin(pair, eta) > 0.0


def max_eta_minus(pair: InvolutionPair, eta_plus: float) -> float:
    """Largest ``eta_minus`` admissible for the given ``eta_plus``.

    This is the dimensioning rule used for the paper's experiments
    (Section V): ``eta_minus = delta_down(-eta_plus) - delta_min -
    eta_plus``.  The returned value is the supremum; to satisfy the strict
    inequality an actual bound must stay below it.  Raises ``ValueError``
    if even ``eta_minus = 0`` is inadmissible for this ``eta_plus``.
    """
    if eta_plus < 0:
        raise ValueError("eta_plus must be non-negative")
    supremum = pair.delta_down(-eta_plus) - pair.delta_min - eta_plus
    if not math.isfinite(supremum) or supremum <= 0:
        raise ValueError(
            f"eta_plus={eta_plus} admits no eta_minus >= 0 under constraint (C); "
            f"the supremum evaluates to {supremum}"
        )
    return supremum


def max_eta_plus(pair: InvolutionPair) -> float:
    """Supremum of admissible ``eta_plus`` values (with ``eta_minus = 0``).

    Constraint (C) with ``eta_minus = 0`` reads
    ``eta_plus < delta_down(-eta_plus) - delta_min``; the left side is
    increasing and the right side decreasing in ``eta_plus``, so the
    supremum is the unique root of ``delta_down(-x) - delta_min - x``.
    Note the paper's observation that (C) implies ``eta_plus < delta_min``.
    """

    def gap(x: float) -> float:
        value = pair.delta_down(-x)
        if not math.isfinite(value):
            return -math.inf
        return value - pair.delta_min - x

    lo, hi = 0.0, pair.delta_min
    if gap(lo) <= 0:
        return 0.0
    g_hi = gap(hi)
    while g_hi > 0:
        hi *= 1.5
        g_hi = gap(hi)
        if hi > 1e6 * max(pair.delta_min, 1.0):  # pragma: no cover - defensive
            raise RuntimeError("could not bracket max_eta_plus")
    return float(optimize.brentq(gap, lo, hi, xtol=1e-15, rtol=1e-14))


def max_symmetric_eta(pair: InvolutionPair) -> float:
    """Supremum of ``eta`` such that ``EtaBound.symmetric(eta)`` satisfies (C).

    Solves ``2*eta = delta_down(-eta) - delta_min`` for the unique positive
    root (left side increasing, right side decreasing from a positive
    value at 0 for strictly causal channels).
    """

    def gap(x: float) -> float:
        value = pair.delta_down(-x)
        if not math.isfinite(value):
            return -math.inf
        return value - pair.delta_min - 2.0 * x

    lo = 0.0
    if gap(lo) <= 0:
        return 0.0
    hi = pair.delta_min
    g_hi = gap(hi)
    while g_hi > 0:
        hi *= 1.5
        g_hi = gap(hi)
        if hi > 1e6 * max(pair.delta_min, 1.0):  # pragma: no cover - defensive
            raise RuntimeError("could not bracket max_symmetric_eta")
    return float(optimize.brentq(gap, lo, hi, xtol=1e-15, rtol=1e-14))


def admissible_eta_bound(
    pair: InvolutionPair,
    eta_plus: float,
    *,
    back_off: float = 1e-3,
    eta_minus: Optional[float] = None,
) -> EtaBound:
    """Construct an admissible :class:`EtaBound` for the given ``eta_plus``.

    If ``eta_minus`` is not given, it is set to the paper's dimensioning
    value ``delta_down(-eta_plus) - delta_min - eta_plus`` reduced by the
    relative ``back_off`` so that the strict inequality of (C) holds.
    Raises ``ValueError`` if the requested bound cannot satisfy (C).
    """
    if eta_minus is None:
        supremum = max_eta_minus(pair, eta_plus)
        eta_minus = supremum * (1.0 - back_off)
    bound = EtaBound(eta_plus, eta_minus)
    if not satisfies_constraint_C(pair, bound):
        raise ValueError(
            f"requested bound {bound!r} violates constraint (C) "
            f"(margin {constraint_C_margin(pair, bound):g})"
        )
    return bound
