"""Serial composition of channels.

Circuits compose channels through zero-time gates; for chains of
single-input gates (buffers/inverters) this reduces to plain function
composition of the channel functions.  :class:`SerialChannel` packages that
composition as a channel of its own, which is convenient for

* collapsing an inverter chain into one equivalent "macro channel" (useful
  for quick what-if analyses without building a circuit),
* comparing a characterised whole-chain delay against the composition of
  per-stage characterisations,
* studying how glitch attenuation accumulates over stages.

Note that the composition of involution channels is in general *not* an
involution channel (the class is not closed under composition); the
composite is simply a channel that applies its parts in sequence.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .channel import Channel
from .transitions import Signal

__all__ = ["SerialChannel"]


class SerialChannel(Channel):
    """Apply a sequence of channels one after the other.

    Parameters
    ----------
    stages:
        The channels to apply, first element first.  Each stage sees the
        previous stage's (cancellation-resolved) output signal.
    """

    def __init__(self, stages: Sequence[Channel], *, name: Optional[str] = None) -> None:
        if not stages:
            raise ValueError("a serial channel needs at least one stage")
        inverting = sum(1 for s in stages if s.inverting) % 2 == 1
        super().__init__(inverting=inverting, name=name or "SerialChannel")
        self.stages: List[Channel] = list(stages)

    def delay_for(self, T: float, rising_output: bool, index: int, time: float) -> float:
        raise NotImplementedError(
            "SerialChannel has no single-history delay function; "
            "use apply() / __call__()"
        )

    def reset(self) -> None:
        for stage in self.stages:
            stage.reset()

    def output_initial_value(self, input_initial_value: int) -> int:
        value = input_initial_value
        for stage in self.stages:
            value = stage.output_initial_value(value)
        return value

    def apply(
        self,
        signal: Signal,
        *,
        mode: str = "transport",
        use_reference_cancellation: bool = False,
    ) -> Signal:
        current = signal
        for stage in self.stages:
            current = stage.apply(
                current,
                mode=mode,
                use_reference_cancellation=use_reference_cancellation,
            )
        return current

    def stage_outputs(self, signal: Signal, *, mode: str = "transport") -> List[Signal]:
        """Return the intermediate signal after every stage (taps Q1..QN)."""
        outputs: List[Signal] = []
        current = signal
        for stage in self.stages:
            current = stage.apply(current, mode=mode)
            outputs.append(current)
        return outputs

    def __len__(self) -> int:
        return len(self.stages)

    def __repr__(self) -> str:
        return f"SerialChannel({len(self.stages)} stages, inverting={self.inverting})"
