"""Adversary strategies for eta-involution channels.

The eta-involution channel (DATE 2018) perturbs every tentative output
transition by an *adversarial* shift ``eta_n`` taken from the interval
``[-eta_minus, +eta_plus]``.  The model itself is non-deterministic: an
execution is valid if *some* admissible sequence of shifts produces it.
For simulation and analysis we therefore need concrete strategies that
resolve the non-determinism.  This module provides the strategies used in
the paper's proofs and experiments:

* :class:`ZeroAdversary` -- always ``eta_n = 0`` (reduces the channel to a
  deterministic involution channel; used by the bounded-time SPF
  impossibility argument).
* :class:`WorstCaseAdversary` -- rising transitions maximally late
  (``+eta_plus``), falling transitions maximally early (``-eta_minus``).
  This is the adversary of Lemma 5 that minimises pulse up-times in the
  storage loop and defines the self-repeating worst-case pulse train.
* :class:`RandomAdversary` -- i.i.d. random shifts (uniform or truncated
  Gaussian), modelling bounded random jitter/noise.
* :class:`SineAdversary` -- deterministic, slowly varying shifts, modelling
  e.g. supply-voltage ripple (flicker-like perturbations).
* :class:`SequenceAdversary` -- replay an explicit shift sequence (the
  "admissible parameter" H of the formal model).
* :class:`DeCancelAdversary` -- tries to keep pulses alive that the
  deterministic channel would cancel (Fig. 4, trace out2).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

import numpy as np

__all__ = [
    "EtaBound",
    "Adversary",
    "ZeroAdversary",
    "WorstCaseAdversary",
    "BestCaseAdversary",
    "RandomAdversary",
    "SineAdversary",
    "SequenceAdversary",
    "DeCancelAdversary",
]


class EtaBound:
    """The admissible shift interval ``[-eta_minus, +eta_plus]``.

    Both bounds are non-negative; ``eta_plus`` limits how much later an
    output transition may occur than the deterministic involution delay
    predicts, ``eta_minus`` how much earlier.
    """

    __slots__ = ("eta_plus", "eta_minus")

    def __init__(self, eta_plus: float, eta_minus: float) -> None:
        if eta_plus < 0 or eta_minus < 0:
            raise ValueError("eta bounds must be non-negative")
        self.eta_plus = float(eta_plus)
        self.eta_minus = float(eta_minus)

    @classmethod
    def zero(cls) -> "EtaBound":
        """The degenerate bound with no allowed perturbation."""
        return cls(0.0, 0.0)

    @classmethod
    def symmetric(cls, eta: float) -> "EtaBound":
        """Symmetric bound ``[-eta, +eta]``."""
        return cls(eta, eta)

    @property
    def width(self) -> float:
        """Total width ``eta_plus + eta_minus`` of the interval."""
        return self.eta_plus + self.eta_minus

    def contains(self, eta: float, tolerance: float = 1e-12) -> bool:
        """True if ``eta`` lies within the admissible interval."""
        return -self.eta_minus - tolerance <= eta <= self.eta_plus + tolerance

    def clip(self, eta: float) -> float:
        """Clamp a proposed shift into the admissible interval."""
        return min(max(eta, -self.eta_minus), self.eta_plus)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EtaBound):
            return NotImplemented
        return self.eta_plus == other.eta_plus and self.eta_minus == other.eta_minus

    def __repr__(self) -> str:
        return f"EtaBound(+{self.eta_plus:g}, -{self.eta_minus:g})"


class Adversary:
    """Base class of adversary strategies.

    A strategy is queried once per input transition and must return a shift
    within the channel's :class:`EtaBound`.  The query receives the
    transition index, its time, polarity and the previous-output-to-input
    delay ``T``; strategies may ignore any of these.
    """

    def reset(self) -> None:
        """Reset internal state before a new channel evaluation."""

    def choose(self, index: int, time: float, rising: bool, T: float, bound: EtaBound) -> float:
        """Return the shift ``eta_n`` for the ``index``-th input transition."""
        raise NotImplementedError  # pragma: no cover - interface

    def sequence(self, n: int, bound: EtaBound, rising_first: bool = True) -> List[float]:
        """Convenience: materialise the first ``n`` choices for alternating
        transitions starting with a rising one (times/T are passed as 0)."""
        self.reset()
        rising = rising_first
        out = []
        for i in range(n):
            out.append(self.choose(i, 0.0, rising, 0.0, bound))
            rising = not rising
        return out


class ZeroAdversary(Adversary):
    """Always chooses ``eta_n = 0`` (deterministic involution behaviour)."""

    def choose(self, index: int, time: float, rising: bool, T: float, bound: EtaBound) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "ZeroAdversary()"


class WorstCaseAdversary(Adversary):
    """Rising transitions maximally late, falling maximally early.

    This is the worst case of Lemma 5: it minimises the up-times of the
    pulse train circulating in the SPF storage loop (and simultaneously
    maximises its period), defining the bounds ``Delta`` and ``P``.
    """

    def choose(self, index: int, time: float, rising: bool, T: float, bound: EtaBound) -> float:
        return bound.eta_plus if rising else -bound.eta_minus

    def __repr__(self) -> str:
        return "WorstCaseAdversary()"


class BestCaseAdversary(Adversary):
    """Rising transitions maximally early, falling maximally late.

    The mirror image of :class:`WorstCaseAdversary`: it maximises pulse
    up-times, i.e. helps pulses survive.  Useful as the other extreme when
    bracketing the reachable set of behaviours.
    """

    def choose(self, index: int, time: float, rising: bool, T: float, bound: EtaBound) -> float:
        return -bound.eta_minus if rising else bound.eta_plus

    def __repr__(self) -> str:
        return "BestCaseAdversary()"


class RandomAdversary(Adversary):
    """I.i.d. random shifts within the admissible interval.

    Parameters
    ----------
    seed:
        Seed for the underlying NumPy generator (None for entropy-seeded).
    distribution:
        ``"uniform"`` draws uniformly on ``[-eta_minus, +eta_plus]``;
        ``"gaussian"`` draws a zero-mean Gaussian with standard deviation
        ``sigma_fraction * (eta_plus + eta_minus) / 2`` truncated (clipped)
        to the admissible interval.
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        distribution: str = "uniform",
        sigma_fraction: float = 0.5,
    ) -> None:
        if distribution not in ("uniform", "gaussian"):
            raise ValueError("distribution must be 'uniform' or 'gaussian'")
        self._seed = seed
        self.distribution = distribution
        self.sigma_fraction = float(sigma_fraction)
        # The generator is created lazily on the first draw: every channel
        # is reset at the start of every simulation run, but in large
        # circuits most channels never see a transition, and generator
        # construction (~10 us each) would dominate the engine's per-run
        # setup cost.
        self._rng: Optional[np.random.Generator] = None

    def reset(self) -> None:
        self._rng = None

    @property
    def rng(self) -> np.random.Generator:
        """The underlying generator (re-seeded lazily after every reset)."""
        if self._rng is None:
            self._rng = np.random.default_rng(self._seed)
        return self._rng

    def choose(self, index: int, time: float, rising: bool, T: float, bound: EtaBound) -> float:
        if self.distribution == "uniform":
            return float(self.rng.uniform(-bound.eta_minus, bound.eta_plus))
        sigma = self.sigma_fraction * bound.width / 2.0
        if sigma == 0.0:
            return 0.0
        return bound.clip(float(self.rng.normal(0.0, sigma)))

    def __repr__(self) -> str:
        return f"RandomAdversary(seed={self._seed!r}, distribution={self.distribution!r})"


class SineAdversary(Adversary):
    """Deterministic slowly-varying shifts ``A * sin(2*pi*time/period + phase)``.

    Models low-frequency disturbances such as supply ripple: the shift is a
    function of the (absolute) transition time, clipped to the admissible
    interval.  ``amplitude_fraction`` scales the amplitude relative to the
    one-sided eta bounds so the choice is always admissible.
    """

    def __init__(self, period: float, phase: float = 0.0, amplitude_fraction: float = 1.0) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if not (0.0 <= amplitude_fraction <= 1.0):
            raise ValueError("amplitude_fraction must be in [0, 1]")
        self.period = float(period)
        self.phase = float(phase)
        self.amplitude_fraction = float(amplitude_fraction)

    def choose(self, index: int, time: float, rising: bool, T: float, bound: EtaBound) -> float:
        s = math.sin(2.0 * math.pi * time / self.period + self.phase)
        amplitude = bound.eta_plus if s >= 0 else bound.eta_minus
        return bound.clip(self.amplitude_fraction * amplitude * s)

    def __repr__(self) -> str:
        return (
            f"SineAdversary(period={self.period:g}, phase={self.phase:g}, "
            f"amplitude_fraction={self.amplitude_fraction:g})"
        )


class SequenceAdversary(Adversary):
    """Replay an explicit sequence of shifts (the parameter ``H`` of the model).

    Shifts beyond the end of the sequence default to ``fill`` (0 by
    default).  Each shift is validated against the channel's bound; an
    inadmissible value raises ``ValueError`` rather than being silently
    clipped, because the formal model only quantifies over admissible H.
    """

    def __init__(self, shifts: Iterable[float], fill: float = 0.0, clip: bool = False) -> None:
        self.shifts = [float(s) for s in shifts]
        self.fill = float(fill)
        self.clip_values = bool(clip)

    def choose(self, index: int, time: float, rising: bool, T: float, bound: EtaBound) -> float:
        eta = self.shifts[index] if index < len(self.shifts) else self.fill
        if self.clip_values:
            return bound.clip(eta)
        if not bound.contains(eta):
            raise ValueError(
                f"shift {eta} at index {index} is outside the admissible interval "
                f"[-{bound.eta_minus}, {bound.eta_plus}]"
            )
        return eta

    def __repr__(self) -> str:
        return f"SequenceAdversary({self.shifts!r}, fill={self.fill:g})"


class DeCancelAdversary(Adversary):
    """Try to keep pulses alive that the deterministic channel would cancel.

    Rising transitions are shifted maximally early and falling transitions
    maximally late, so the tentative output pulse is as long as possible
    and FIFO order is preserved whenever admissible shifts can achieve it.
    This realises the "de-cancelled" second pulse of Fig. 4 (out2).
    """

    def choose(self, index: int, time: float, rising: bool, T: float, bound: EtaBound) -> float:
        return -bound.eta_minus if rising else bound.eta_plus

    def __repr__(self) -> str:
        return "DeCancelAdversary()"
