"""The eta-involution channel: involution delays with adversarial noise.

This is the paper's central contribution (Section III).  The channel
computes the deterministic involution delay ``delta(T)`` and then adds a
per-transition shift ``eta_n`` chosen (adversarially, randomly, or
deterministically) from the interval ``[-eta_minus, +eta_plus]``::

    delta_n = delta_up(max(T_n, -delta_up_inf)) + eta_n   (rising output)
    delta_n = delta_down(max(T_n, -delta_down_inf)) + eta_n (falling output)

The ``max``-terms guard against arguments outside the delay function's
domain (a short glitch after a long stable phase); the resulting ``-inf``
delay makes the transition cancel with its predecessor, which the paper
notes is the only sensible interpretation.

Faithfulness of the model requires the noise bound to satisfy constraint
(C) of the paper, ``eta_plus + eta_minus < delta_down(-eta_plus) -
delta_min`` -- this is *not* enforced at construction time (the channel is
perfectly well defined without it) but can be checked via
:meth:`EtaInvolutionChannel.satisfies_constraint_C` or the helpers in
:mod:`repro.core.constraint`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from .adversary import Adversary, EtaBound, SequenceAdversary, ZeroAdversary
from .channel import Channel, PendingTransition
from .involution import InvolutionPair
from .transitions import Signal

__all__ = ["EtaInvolutionChannel"]


class EtaInvolutionChannel(Channel):
    """Involution channel with bounded per-transition adversarial shifts.

    Parameters
    ----------
    pair:
        The underlying involution delay pair.
    eta:
        The admissible shift interval (an :class:`EtaBound`).
    adversary:
        Strategy resolving the non-determinism.  Defaults to
        :class:`ZeroAdversary`, i.e. deterministic involution behaviour.
    inverting:
        Logical inversion of the channel (see :class:`Channel`).
    """

    def __init__(
        self,
        pair: InvolutionPair,
        eta: EtaBound,
        adversary: Optional[Adversary] = None,
        *,
        inverting: bool = False,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(inverting=inverting, name=name)
        self.pair = pair
        self.eta = eta
        self.adversary = adversary if adversary is not None else ZeroAdversary()
        self._last_etas: List[float] = []
        # Hot-path constants (delay_for runs once per transition): polarity
        # function references, limits, domain edges and the admissible
        # interval, hoisted out of the per-call method lookups.
        self._delta_up = pair.delta_up
        self._delta_down = pair.delta_down
        self._up_inf = pair.delta_up.delta_inf()
        self._down_inf = pair.delta_down.delta_inf()
        self._up_low = pair.delta_up.domain_low()
        self._down_low = pair.delta_down.domain_low()
        self._eta_lo = -eta.eta_minus - 1e-12
        self._eta_hi = eta.eta_plus + 1e-12

    # ------------------------------------------------------------------ #
    # Constructors / accessors
    # ------------------------------------------------------------------ #

    @classmethod
    def exp_channel(
        cls,
        tau: float,
        t_p: float,
        eta: EtaBound,
        v_th: float = 0.5,
        adversary: Optional[Adversary] = None,
        *,
        inverting: bool = False,
        name: Optional[str] = None,
    ) -> "EtaInvolutionChannel":
        """Construct an eta-perturbed exp-channel."""
        return cls(
            InvolutionPair.exp_channel(tau, t_p, v_th),
            eta,
            adversary,
            inverting=inverting,
            name=name,
        )

    @property
    def delta_min(self) -> float:
        """``delta_min`` of the underlying involution pair."""
        return self.pair.delta_min

    @property
    def delta_up_inf(self) -> float:
        """Limit of the up-delay for large ``T``."""
        return self.pair.delta_up_inf

    @property
    def delta_down_inf(self) -> float:
        """Limit of the down-delay for large ``T``."""
        return self.pair.delta_down_inf

    @property
    def last_eta_choices(self) -> List[float]:
        """The shift sequence used in the most recent evaluation."""
        return list(self._last_etas)

    def satisfies_constraint_C(self) -> bool:
        """True if the noise bound satisfies constraint (C) of the paper."""
        from .constraint import satisfies_constraint_C

        return satisfies_constraint_C(self.pair, self.eta)

    def with_adversary(self, adversary: Adversary) -> "EtaInvolutionChannel":
        """Return a copy of this channel using a different adversary."""
        return EtaInvolutionChannel(
            self.pair,
            self.eta,
            adversary,
            inverting=self.inverting,
            name=self.name,
        )

    # ------------------------------------------------------------------ #
    # Channel interface
    # ------------------------------------------------------------------ #

    def reset(self) -> None:
        self.adversary.reset()
        self._last_etas = []

    def delay_for(self, T: float, rising_output: bool, index: int, time: float) -> float:
        if rising_output:
            delta, inf_limit, low = self._delta_up, self._up_inf, self._up_low
        else:
            delta, inf_limit, low = self._delta_down, self._down_inf, self._down_low
        eta_n = self.adversary.choose(index, time, rising_output, T, self.eta)
        if not (self._eta_lo <= eta_n <= self._eta_hi):
            raise ValueError(
                f"adversary produced inadmissible shift {eta_n} outside "
                f"[-{self.eta.eta_minus}, {self.eta.eta_plus}]"
            )
        self._last_etas.append(eta_n)
        if T == math.inf:
            return inf_limit + eta_n
        # The max-term guard of the paper: arguments at or below the domain
        # edge of the delay function (written -delta_up_inf in the paper for
        # the symmetric case; the edge is -delta_down_inf for delta_up in
        # general) yield a -inf delay, which makes the transition cancel with
        # its still-pending predecessor.
        if T <= low:
            return -math.inf
        value = delta(T)
        if not math.isfinite(value):
            return -math.inf
        return value + eta_n

    # ------------------------------------------------------------------ #
    # Admissible-parameter (H) interface of the formal model
    # ------------------------------------------------------------------ #

    def apply_with_choices(self, signal: Signal, choices: Sequence[float]) -> Signal:
        """Evaluate the channel under an explicit admissible parameter ``H``.

        ``choices[n]`` is the shift applied to the n-th input transition;
        missing entries default to 0.  Raises ``ValueError`` if any choice
        is inadmissible.
        """
        replay = self.with_adversary(SequenceAdversary(choices))
        return replay.apply(signal)

    def deterministic_output(self, signal: Signal) -> Signal:
        """Output of the underlying deterministic involution channel
        (all shifts zero) -- the dotted transitions in Fig. 4."""
        return self.with_adversary(ZeroAdversary()).apply(signal)

    def pending_with_etas(self, signal: Signal) -> List[PendingTransition]:
        """Tentative transitions annotated with the adversarial shifts used."""
        pending = self.pending_transitions(signal)
        for p, eta_n in zip(pending, self._last_etas):
            p.eta = eta_n
        return pending

    def __repr__(self) -> str:
        return (
            f"EtaInvolutionChannel({self.pair!r}, eta={self.eta!r}, "
            f"adversary={self.adversary!r}, inverting={self.inverting})"
        )
