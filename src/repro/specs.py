"""Declarative, JSON-round-trippable specifications of the model's objects.

The paper's model is parametric by construction: involution pairs, eta
bounds and delay functions are plain numbers.  This module captures that
parametricity in immutable *spec* objects -- ``kind`` (a registry key) plus
``params`` (a JSON-compatible mapping) -- that can be serialized, hashed,
compared and shipped across process boundaries, in contrast to the opaque
``Callable[[], Channel]`` factory lambdas of the original API:

* :class:`DelaySpec` -- a delay function (``exp``, ``constant``, ``table``,
  ``shifted``, ``scaled``),
* :class:`AdversarySpec` -- an adversary strategy (``zero``, ``worst``,
  ``best``, ``decancel``, ``random``, ``sine``, ``sequence``),
* :class:`ChannelSpec` -- a channel, including its involution pair and eta
  bound (``zero``, ``pure``, ``inertial``, ``ddm``, ``involution``,
  ``eta_involution``, ``serial``),
* :class:`CircuitSpec` -- a whole circuit netlist (ordered nodes and edges
  with per-edge channel specs); ``Circuit.to_spec()`` /
  ``Circuit.from_spec()`` round-trip through it, and
  :mod:`repro.io.netlist` adds the JSON file format,
* :class:`ExperimentSpec` -- one of the paper's experiments (``theorem9``,
  ``lemma5``, ``fig7``, ``fig8``, ``fig9``, ``comparison``, ``scaling``,
  ``eta_coverage``) as a declarative, hashable parameter set; running one
  (:func:`repro.experiments.run_experiment` /
  :meth:`ExperimentSpec.run`) yields a provenance-carrying
  :class:`~repro.experiments.base.ExperimentResult` that the
  content-addressed artifact store (:mod:`repro.store`) caches by spec
  hash.

Node and edge *order* is part of a circuit spec: the engine's event-id tie
breaking follows insertion order, so preserving it is what makes a rebuilt
circuit execute bit-identically -- the property the process sweep backend
(:func:`repro.engine.sweep.run_many`) relies on when it ships specs
instead of pickled circuit objects.

Every registry has an extension hook (:func:`register_channel_kind`,
:func:`register_delay_kind`, :func:`register_adversary_kind`,
:func:`register_experiment_kind`) so user-defined subclasses and
experiments can participate in spec round-trips.

The :func:`as_circuit` / :func:`as_channel` / :func:`as_channel_factory` /
:func:`as_pair` / :func:`as_eta` / :func:`as_adversary` coercion helpers
let every higher-level entry point (library builders, experiment drivers,
fitting, :mod:`repro.api`) accept either the live object or its spec.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Type

from .core.adversary import (
    Adversary,
    BestCaseAdversary,
    DeCancelAdversary,
    EtaBound,
    RandomAdversary,
    SequenceAdversary,
    SineAdversary,
    WorstCaseAdversary,
    ZeroAdversary,
)
from .core.baselines import (
    DegradationDelayChannel,
    InertialDelayChannel,
    PureDelayChannel,
)
from .core.channel import Channel, ZeroDelayChannel
from .core.composition import SerialChannel
from .core.delay_functions import (
    ConstantDelay,
    DelayFunction,
    ExpDelay,
    ScaledDelay,
    ShiftedDelay,
    TableDelay,
)
from .core.eta_channel import EtaInvolutionChannel
from .core.involution import InvolutionPair
from .core.involution_channel import InvolutionChannel

__all__ = [
    "SpecError",
    "Spec",
    "DelaySpec",
    "AdversarySpec",
    "ChannelSpec",
    "CircuitSpec",
    "ExperimentSpec",
    "ExperimentKind",
    "register_delay_kind",
    "register_adversary_kind",
    "register_channel_kind",
    "register_experiment_kind",
    "experiment_kinds",
    "channel_kinds",
    "delay_kinds",
    "adversary_kinds",
    "get_experiment_kind",
    "pair_to_dict",
    "pair_from_dict",
    "eta_to_dict",
    "eta_from_dict",
    "as_circuit",
    "as_channel",
    "as_channel_factory",
    "as_pair",
    "as_eta",
    "as_adversary",
    "as_adversary_factory",
]


class SpecError(ValueError):
    """Raised for unknown kinds, malformed params, or objects with no spec."""


# --------------------------------------------------------------------------- #
# Canonicalisation
# --------------------------------------------------------------------------- #


def _jsonify(value: Any) -> Any:
    """Deep-copy ``value`` into plain JSON-compatible Python containers."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, Mapping):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise SpecError(f"spec mapping keys must be strings, got {key!r}")
            out[key] = _jsonify(item)
        return out
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    # numpy scalars and anything else float-like
    try:
        import numpy as np

        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.floating):
            return float(value)
        if isinstance(value, np.ndarray):
            return [_jsonify(item) for item in value.tolist()]
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    raise SpecError(f"value {value!r} is not JSON-representable in a spec")


def _canonical_key(payload: Any) -> str:
    """Canonical JSON text used for spec equality and hashing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class Spec:
    """An immutable ``kind`` + ``params`` pair with value semantics.

    Two specs are equal iff their kind and (canonicalised) params are; the
    hash follows, so specs work as dict keys and dedup sets -- the two
    operations factory lambdas could never support.
    """

    __slots__ = ("kind", "params", "_key")

    def __init__(self, kind: str, params: Optional[Mapping[str, Any]] = None, **kw: Any) -> None:
        merged = dict(params or {})
        merged.update(kw)
        object.__setattr__(self, "kind", str(kind))
        object.__setattr__(self, "params", _jsonify(merged))
        # The canonical key only matters for equality/hashing; computing it
        # eagerly would put a json.dumps on every construction, which the
        # sharded sweep layer pays per (scenario, edge) when fingerprinting
        # chunks.  Computed on first use instead (see _canonical).
        object.__setattr__(self, "_key", None)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def _canonical(self) -> str:
        key = self._key
        if key is None:
            key = _canonical_key({"kind": self.kind, "params": self.params})
            object.__setattr__(self, "_key", key)
        return key

    # -- serialisation --------------------------------------------------- #

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form ``{"kind": ..., **params}`` (JSON-compatible)."""
        out = {"kind": self.kind}
        # _jsonify deep-copies the (already canonicalised) params, so
        # callers can mutate the result freely -- and skips the JSON
        # dumps/loads round-trip this used to pay for the same copy.
        out.update(_jsonify(self.params))
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Spec":
        """Rebuild a spec from its :meth:`to_dict` form."""
        if "kind" not in data:
            raise SpecError(f"spec dict needs a 'kind' field, got {dict(data)!r}")
        params = {k: v for k, v in data.items() if k != "kind"}
        return cls(data["kind"], params)

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Spec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    # -- value semantics -------------------------------------------------- #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Spec):
            return NotImplemented
        return type(self) is type(other) and self._canonical() == other._canonical()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._canonical()))

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"{type(self).__name__}({self.kind!r}, {params})"


# --------------------------------------------------------------------------- #
# Delay functions
# --------------------------------------------------------------------------- #

#: kind -> (builder(params) -> DelayFunction).
_DELAY_BUILDERS: Dict[str, Callable[[Mapping[str, Any]], DelayFunction]] = {}
#: exact delay-function class -> extractor(fn) -> params dict.
_DELAY_EXTRACTORS: Dict[Type[DelayFunction], Tuple[str, Callable[[DelayFunction], Dict[str, Any]]]] = {}


def register_delay_kind(
    kind: str,
    builder: Callable[[Mapping[str, Any]], DelayFunction],
    *,
    delay_class: Optional[Type[DelayFunction]] = None,
    extractor: Optional[Callable[[DelayFunction], Dict[str, Any]]] = None,
    replace: bool = False,
) -> None:
    """Register a delay-function kind (the extension hook for user kinds).

    ``builder`` maps a params mapping to a :class:`DelayFunction`;
    ``delay_class`` + ``extractor`` (optional) enable the reverse
    ``to_spec`` direction for instances of that exact class.
    """
    if kind in _DELAY_BUILDERS and not replace:
        raise SpecError(f"delay kind {kind!r} is already registered")
    _DELAY_BUILDERS[kind] = builder
    if delay_class is not None:
        if extractor is None:
            raise SpecError("delay_class requires an extractor")
        _DELAY_EXTRACTORS[delay_class] = (kind, extractor)


class DelaySpec(Spec):
    """Declarative description of a :class:`~repro.core.delay_functions.DelayFunction`."""

    def build(self) -> DelayFunction:
        """Instantiate the delay function this spec describes."""
        try:
            builder = _DELAY_BUILDERS[self.kind]
        except KeyError:
            raise SpecError(
                f"unknown delay kind {self.kind!r}; registered: "
                f"{sorted(_DELAY_BUILDERS)}"
            ) from None
        return builder(self.params)

    @classmethod
    def from_delay(cls, fn: DelayFunction) -> "DelaySpec":
        """Extract the spec of a delay-function instance (exact-class match)."""
        try:
            kind, extractor = _DELAY_EXTRACTORS[type(fn)]
        except KeyError:
            raise SpecError(
                f"no spec kind registered for delay function {type(fn).__name__}; "
                "register one via repro.specs.register_delay_kind"
            ) from None
        return cls(kind, extractor(fn))


def _build_exp(params: Mapping[str, Any]) -> ExpDelay:
    return ExpDelay(
        float(params["tau"]),
        float(params["t_p"]),
        float(params.get("v_th", 0.5)),
        rising=bool(params.get("rising", True)),
    )


def _build_table(params: Mapping[str, Any]) -> TableDelay:
    return TableDelay(
        [float(t) for t in params["T_samples"]],
        [float(d) for d in params["delta_samples"]],
        None if params.get("delta_inf") is None else float(params["delta_inf"]),
    )


register_delay_kind(
    "exp",
    _build_exp,
    delay_class=ExpDelay,
    extractor=lambda fn: {
        "tau": fn.tau,
        "t_p": fn.t_p,
        "v_th": fn.v_th,
        "rising": fn.rising,
    },
)
register_delay_kind(
    "constant",
    lambda p: ConstantDelay(float(p["delay"])),
    delay_class=ConstantDelay,
    extractor=lambda fn: {"delay": fn.delay},
)
register_delay_kind(
    "table",
    _build_table,
    delay_class=TableDelay,
    extractor=lambda fn: {
        "T_samples": [float(t) for t in fn.T_samples],
        "delta_samples": [float(d) for d in fn.delta_samples],
        "delta_inf": fn.delta_inf(),
    },
)
register_delay_kind(
    "shifted",
    lambda p: ShiftedDelay(
        DelaySpec.from_dict(p["base"]).build(),
        float(p.get("shift_T", 0.0)),
        float(p.get("shift_delta", 0.0)),
    ),
    delay_class=ShiftedDelay,
    extractor=lambda fn: {
        "base": DelaySpec.from_delay(fn.base).to_dict(),
        "shift_T": fn.shift_T,
        "shift_delta": fn.shift_delta,
    },
)
register_delay_kind(
    "scaled",
    lambda p: ScaledDelay(DelaySpec.from_dict(p["base"]).build(), float(p["scale"])),
    delay_class=ScaledDelay,
    extractor=lambda fn: {
        "base": DelaySpec.from_delay(fn.base).to_dict(),
        "scale": fn.scale,
    },
)


# --------------------------------------------------------------------------- #
# Involution pairs and eta bounds
# --------------------------------------------------------------------------- #


def pair_to_dict(pair: InvolutionPair) -> Dict[str, Any]:
    """Serialise an involution pair.

    The exp-channel case (the paper's workhorse) collapses to its three
    physical parameters; any other pair serialises its two delay functions
    individually (rebuilt without re-validation, matching
    :meth:`InvolutionPair.from_samples`).
    """
    up, down = pair.delta_up, pair.delta_down
    if (
        isinstance(up, ExpDelay)
        and isinstance(down, ExpDelay)
        and up.rising
        and not down.rising
        and (up.tau, up.t_p, up.v_th) == (down.tau, down.t_p, down.v_th)
    ):
        return {"kind": "exp", "tau": up.tau, "t_p": up.t_p, "v_th": up.v_th}
    return {
        "kind": "pair",
        "up": DelaySpec.from_delay(up).to_dict(),
        "down": DelaySpec.from_delay(down).to_dict(),
    }


def pair_from_dict(data: Mapping[str, Any]) -> InvolutionPair:
    """Rebuild an involution pair from :func:`pair_to_dict` output."""
    kind = data.get("kind")
    if kind == "exp":
        return InvolutionPair.exp_channel(
            float(data["tau"]), float(data["t_p"]), float(data.get("v_th", 0.5))
        )
    if kind == "pair":
        return InvolutionPair(
            DelaySpec.from_dict(data["up"]).build(),
            DelaySpec.from_dict(data["down"]).build(),
            validate=False,
        )
    raise SpecError(f"unknown involution-pair kind {kind!r}")


def eta_to_dict(eta: EtaBound) -> Dict[str, float]:
    """Serialise an eta bound."""
    return {"eta_plus": eta.eta_plus, "eta_minus": eta.eta_minus}


def eta_from_dict(data: Mapping[str, Any]) -> EtaBound:
    """Rebuild an eta bound from :func:`eta_to_dict` output."""
    return EtaBound(float(data["eta_plus"]), float(data["eta_minus"]))


# --------------------------------------------------------------------------- #
# Adversaries
# --------------------------------------------------------------------------- #

_ADVERSARY_BUILDERS: Dict[str, Callable[[Mapping[str, Any]], Adversary]] = {}
_ADVERSARY_EXTRACTORS: Dict[Type[Adversary], Tuple[str, Callable[[Adversary], Dict[str, Any]]]] = {}


def register_adversary_kind(
    kind: str,
    builder: Callable[[Mapping[str, Any]], Adversary],
    *,
    adversary_class: Optional[Type[Adversary]] = None,
    extractor: Optional[Callable[[Adversary], Dict[str, Any]]] = None,
    replace: bool = False,
) -> None:
    """Register an adversary kind (the extension hook for user strategies)."""
    if kind in _ADVERSARY_BUILDERS and not replace:
        raise SpecError(f"adversary kind {kind!r} is already registered")
    _ADVERSARY_BUILDERS[kind] = builder
    if adversary_class is not None:
        if extractor is None:
            raise SpecError("adversary_class requires an extractor")
        _ADVERSARY_EXTRACTORS[adversary_class] = (kind, extractor)


class AdversarySpec(Spec):
    """Declarative description of an :class:`~repro.core.adversary.Adversary`."""

    def build(self) -> Adversary:
        """Instantiate the adversary this spec describes."""
        try:
            builder = _ADVERSARY_BUILDERS[self.kind]
        except KeyError:
            raise SpecError(
                f"unknown adversary kind {self.kind!r}; registered: "
                f"{sorted(_ADVERSARY_BUILDERS)}"
            ) from None
        return builder(self.params)

    @classmethod
    def from_adversary(cls, adversary: Adversary) -> "AdversarySpec":
        """Extract the spec of an adversary instance (exact-class match)."""
        try:
            kind, extractor = _ADVERSARY_EXTRACTORS[type(adversary)]
        except KeyError:
            raise SpecError(
                f"no spec kind registered for adversary {type(adversary).__name__}; "
                "register one via repro.specs.register_adversary_kind"
            ) from None
        return cls(kind, extractor(adversary))


def _seed_to_json(seed: Any) -> Any:
    """Serialise a RandomAdversary seed (int, None, or numpy SeedSequence)."""
    if seed is None or isinstance(seed, int):
        return seed
    import numpy as np

    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy
        if isinstance(entropy, (list, tuple)):
            entropy = [int(e) for e in entropy]
        elif entropy is not None:
            entropy = int(entropy)
        return {"entropy": entropy, "spawn_key": [int(k) for k in seed.spawn_key]}
    raise SpecError(f"cannot serialise adversary seed {seed!r}")


def _seed_from_json(data: Any) -> Any:
    if data is None or isinstance(data, int):
        return data
    import numpy as np

    return np.random.SeedSequence(
        data["entropy"], spawn_key=tuple(data.get("spawn_key", ()))
    )


register_adversary_kind(
    "zero", lambda p: ZeroAdversary(), adversary_class=ZeroAdversary, extractor=lambda a: {}
)
register_adversary_kind(
    "worst",
    lambda p: WorstCaseAdversary(),
    adversary_class=WorstCaseAdversary,
    extractor=lambda a: {},
)
register_adversary_kind(
    "best",
    lambda p: BestCaseAdversary(),
    adversary_class=BestCaseAdversary,
    extractor=lambda a: {},
)
register_adversary_kind(
    "decancel",
    lambda p: DeCancelAdversary(),
    adversary_class=DeCancelAdversary,
    extractor=lambda a: {},
)
register_adversary_kind(
    "random",
    lambda p: RandomAdversary(
        seed=_seed_from_json(p.get("seed")),
        distribution=str(p.get("distribution", "uniform")),
        sigma_fraction=float(p.get("sigma_fraction", 0.5)),
    ),
    adversary_class=RandomAdversary,
    extractor=lambda a: {
        "seed": _seed_to_json(a._seed),
        "distribution": a.distribution,
        "sigma_fraction": a.sigma_fraction,
    },
)
register_adversary_kind(
    "sine",
    lambda p: SineAdversary(
        float(p["period"]),
        float(p.get("phase", 0.0)),
        float(p.get("amplitude_fraction", 1.0)),
    ),
    adversary_class=SineAdversary,
    extractor=lambda a: {
        "period": a.period,
        "phase": a.phase,
        "amplitude_fraction": a.amplitude_fraction,
    },
)
register_adversary_kind(
    "sequence",
    lambda p: SequenceAdversary(
        [float(s) for s in p["shifts"]],
        fill=float(p.get("fill", 0.0)),
        clip=bool(p.get("clip", False)),
    ),
    adversary_class=SequenceAdversary,
    extractor=lambda a: {"shifts": a.shifts, "fill": a.fill, "clip": a.clip_values},
)


# --------------------------------------------------------------------------- #
# Channels
# --------------------------------------------------------------------------- #

_CHANNEL_BUILDERS: Dict[str, Callable[[Mapping[str, Any]], Channel]] = {}
_CHANNEL_EXTRACTORS: Dict[Type[Channel], Tuple[str, Callable[[Channel], Dict[str, Any]]]] = {}


def register_channel_kind(
    kind: str,
    builder: Callable[[Mapping[str, Any]], Channel],
    *,
    channel_class: Optional[Type[Channel]] = None,
    extractor: Optional[Callable[[Channel], Dict[str, Any]]] = None,
    replace: bool = False,
) -> None:
    """Register a channel kind (the extension hook for user-defined channels).

    ``builder`` maps a params mapping to a fresh :class:`Channel` instance;
    ``channel_class`` + ``extractor`` (optional) enable ``to_spec`` for
    instances of that exact class, which is what lets circuits containing
    the custom channel ride the process sweep backend and the JSON netlist
    format.
    """
    if kind in _CHANNEL_BUILDERS and not replace:
        raise SpecError(f"channel kind {kind!r} is already registered")
    _CHANNEL_BUILDERS[kind] = builder
    if channel_class is not None:
        if extractor is None:
            raise SpecError("channel_class requires an extractor")
        _CHANNEL_EXTRACTORS[channel_class] = (kind, extractor)


class ChannelSpec(Spec):
    """Declarative description of a :class:`~repro.core.channel.Channel`.

    ``build()`` always returns a *fresh* instance, so one spec can safely
    populate many edges (the role channel factories used to play) without
    any shared mutable adversary/RNG state.
    """

    def build(self) -> Channel:
        """Instantiate a fresh channel from this spec."""
        try:
            builder = _CHANNEL_BUILDERS[self.kind]
        except KeyError:
            raise SpecError(
                f"unknown channel kind {self.kind!r}; registered: "
                f"{sorted(_CHANNEL_BUILDERS)}"
            ) from None
        channel = builder(self.params)
        name = self.params.get("name")
        if name is not None:
            channel.name = name
        return channel

    @classmethod
    def from_channel(cls, channel: Channel) -> "ChannelSpec":
        """Extract the spec of a channel instance (exact-class match)."""
        try:
            kind, extractor = _CHANNEL_EXTRACTORS[type(channel)]
        except KeyError:
            raise SpecError(
                f"no spec kind registered for channel {type(channel).__name__}; "
                "register one via repro.specs.register_channel_kind or use "
                "factory/thread-based entry points"
            ) from None
        params = extractor(channel)
        if channel.name != type(channel).__name__:
            params.setdefault("name", channel.name)
        return cls(kind, params)

    # -- common constructors ------------------------------------------------ #

    @classmethod
    def exp_involution(
        cls, tau: float, t_p: float, v_th: float = 0.5, *, inverting: bool = False
    ) -> "ChannelSpec":
        """Spec of a deterministic exp involution channel."""
        return cls(
            "involution",
            pair={"kind": "exp", "tau": tau, "t_p": t_p, "v_th": v_th},
            inverting=inverting,
        )

    @classmethod
    def exp_eta_involution(
        cls,
        tau: float,
        t_p: float,
        eta: "EtaBound | Mapping[str, float] | Tuple[float, float]",
        v_th: float = 0.5,
        *,
        adversary: Optional["Adversary | AdversarySpec | Mapping[str, Any]"] = None,
        inverting: bool = False,
    ) -> "ChannelSpec":
        """Spec of an eta-perturbed exp involution channel."""
        adv_dict = {"kind": "zero"}
        if adversary is not None:
            if isinstance(adversary, AdversarySpec):
                adv_dict = adversary.to_dict()
            elif isinstance(adversary, Adversary):
                adv_dict = AdversarySpec.from_adversary(adversary).to_dict()
            else:
                adv_dict = dict(adversary)
        return cls(
            "eta_involution",
            pair={"kind": "exp", "tau": tau, "t_p": t_p, "v_th": v_th},
            eta=eta_to_dict(as_eta(eta)),
            adversary=adv_dict,
            inverting=inverting,
        )


def _common(params: Mapping[str, Any]) -> Dict[str, Any]:
    return {"inverting": bool(params.get("inverting", False)), "name": params.get("name")}


register_channel_kind(
    "zero",
    lambda p: ZeroDelayChannel(**_common(p)),
    channel_class=ZeroDelayChannel,
    extractor=lambda c: {"inverting": c.inverting},
)
register_channel_kind(
    "pure",
    lambda p: PureDelayChannel(
        float(p["delay"]),
        None if p.get("falling_delay") is None else float(p["falling_delay"]),
        **_common(p),
    ),
    channel_class=PureDelayChannel,
    extractor=lambda c: {
        "delay": c.rising_delay,
        "falling_delay": c.falling_delay,
        "inverting": c.inverting,
    },
)
register_channel_kind(
    "inertial",
    lambda p: InertialDelayChannel(float(p["delay"]), float(p["window"]), **_common(p)),
    channel_class=InertialDelayChannel,
    extractor=lambda c: {"delay": c.delay, "window": c.window, "inverting": c.inverting},
)
register_channel_kind(
    "ddm",
    lambda p: DegradationDelayChannel(
        float(p["delta_nominal"]),
        float(p["tau_deg"]),
        float(p.get("T0", 0.0)),
        **_common(p),
    ),
    channel_class=DegradationDelayChannel,
    extractor=lambda c: {
        "delta_nominal": c.delta_nominal,
        "tau_deg": c.tau_deg,
        "T0": c.T0,
        "inverting": c.inverting,
    },
)
register_channel_kind(
    "involution",
    lambda p: InvolutionChannel(
        pair_from_dict(p["pair"]),
        guard_domain=bool(p.get("guard_domain", True)),
        **_common(p),
    ),
    channel_class=InvolutionChannel,
    extractor=lambda c: {
        "pair": pair_to_dict(c.pair),
        "guard_domain": c.guard_domain,
        "inverting": c.inverting,
    },
)
register_channel_kind(
    "eta_involution",
    lambda p: EtaInvolutionChannel(
        pair_from_dict(p["pair"]),
        eta_from_dict(p["eta"]),
        AdversarySpec.from_dict(p.get("adversary", {"kind": "zero"})).build(),
        **_common(p),
    ),
    channel_class=EtaInvolutionChannel,
    extractor=lambda c: {
        "pair": pair_to_dict(c.pair),
        "eta": eta_to_dict(c.eta),
        "adversary": AdversarySpec.from_adversary(c.adversary).to_dict(),
        "inverting": c.inverting,
    },
)
register_channel_kind(
    "serial",
    lambda p: SerialChannel(
        [ChannelSpec.from_dict(s).build() for s in p["stages"]], name=p.get("name")
    ),
    channel_class=SerialChannel,
    extractor=lambda c: {
        "stages": [ChannelSpec.from_channel(s).to_dict() for s in c.stages]
    },
)


# --------------------------------------------------------------------------- #
# Gate types
# --------------------------------------------------------------------------- #


def _gate_type_to_spec(gate_type) -> Any:
    """Serialise a gate type: a library name, or name + arity + truth table."""
    from .circuits.gates import GATE_LIBRARY

    library = GATE_LIBRARY.get(gate_type.name)
    if library is not None and library.truth_table() == gate_type.truth_table():
        return gate_type.name
    return {
        "name": gate_type.name,
        "arity": gate_type.arity,
        "table": [
            [*row, out] for row, out in sorted(gate_type.truth_table().items())
        ],
    }


def _gate_type_from_spec(data: Any):
    from .circuits.gates import GATE_LIBRARY, GateType

    if isinstance(data, str):
        try:
            return GATE_LIBRARY[data]
        except KeyError:
            raise SpecError(
                f"unknown library gate {data!r}; known: {sorted(GATE_LIBRARY)}"
            ) from None
    table = {tuple(row[:-1]): row[-1] for row in data["table"]}
    return GateType.from_truth_table(data["name"], int(data["arity"]), table)


# --------------------------------------------------------------------------- #
# Circuits
# --------------------------------------------------------------------------- #


class CircuitSpec:
    """Declarative netlist of a circuit: ordered nodes, ordered edges.

    Node dicts are ``{"kind": "input", "name", "initial_value"}``,
    ``{"kind": "output", "name"}`` or ``{"kind": "gate", "name", "type",
    "initial_value"}``; edge dicts are ``{"name", "source", "target",
    "pin", "channel": <channel-spec dict>}``.  Order is significant (see
    the module docstring) and preserved by :meth:`build`.
    """

    __slots__ = ("name", "nodes", "edges", "_key")

    def __init__(
        self,
        name: str,
        nodes: Sequence[Mapping[str, Any]],
        edges: Sequence[Mapping[str, Any]],
    ) -> None:
        object.__setattr__(self, "name", str(name))
        object.__setattr__(self, "nodes", _jsonify(list(nodes)))
        object.__setattr__(self, "edges", _jsonify(list(edges)))
        object.__setattr__(self, "_key", _canonical_key(self.to_dict()))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("CircuitSpec is immutable")

    # -- construction ------------------------------------------------------ #

    @classmethod
    def from_circuit(cls, circuit) -> "CircuitSpec":
        """Extract the spec of a live circuit (``Circuit.to_spec`` delegate).

        Raises :class:`SpecError` if any edge channel or gate type has no
        registered spec kind.
        """
        from .circuits.circuit import GateInstance, InputPort, OutputPort

        nodes: List[Dict[str, Any]] = []
        for node in circuit.nodes.values():
            if isinstance(node, InputPort):
                nodes.append(
                    {"kind": "input", "name": node.name, "initial_value": node.initial_value}
                )
            elif isinstance(node, OutputPort):
                nodes.append({"kind": "output", "name": node.name})
            elif isinstance(node, GateInstance):
                nodes.append(
                    {
                        "kind": "gate",
                        "name": node.name,
                        "type": _gate_type_to_spec(node.gate_type),
                        "initial_value": node.initial_value,
                    }
                )
            else:  # pragma: no cover - defensive
                raise SpecError(f"unknown node type {type(node).__name__}")
        edges: List[Dict[str, Any]] = []
        for edge in circuit.edges.values():
            edges.append(
                {
                    "name": edge.name,
                    "source": edge.source,
                    "target": edge.target,
                    "pin": edge.pin,
                    "channel": ChannelSpec.from_channel(edge.channel).to_dict(),
                }
            )
        return cls(circuit.name, nodes, edges)

    def build(self):
        """Instantiate the circuit (``Circuit.from_spec`` delegate)."""
        from .circuits.circuit import Circuit

        circuit = Circuit(self.name)
        for node in self.nodes:
            kind = node.get("kind")
            if kind == "input":
                circuit.add_input(node["name"], int(node.get("initial_value", 0)))
            elif kind == "output":
                circuit.add_output(node["name"])
            elif kind == "gate":
                circuit.add_gate(
                    node["name"],
                    _gate_type_from_spec(node["type"]),
                    int(node.get("initial_value", 0)),
                )
            else:
                raise SpecError(f"unknown node kind {kind!r} in circuit spec")
        for edge in self.edges:
            circuit.connect(
                edge["source"],
                edge["target"],
                ChannelSpec.from_dict(edge["channel"]).build(),
                pin=int(edge.get("pin", 0)),
                name=edge.get("name"),
            )
        return circuit

    # -- serialisation ------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-compatible) form of the spec."""
        return {"name": self.name, "nodes": self.nodes, "edges": self.edges}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CircuitSpec":
        """Rebuild a circuit spec from its :meth:`to_dict` form."""
        try:
            return cls(data["name"], data["nodes"], data["edges"])
        except KeyError as exc:
            raise SpecError(f"circuit spec dict is missing field {exc}") from None

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """JSON text of :meth:`to_dict` (see :mod:`repro.io.netlist` for files)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CircuitSpec":
        """Rebuild a circuit spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    # -- value semantics ---------------------------------------------------- #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CircuitSpec):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(("CircuitSpec", self._key))

    def __repr__(self) -> str:
        return (
            f"CircuitSpec(name={self.name!r}, nodes={len(self.nodes)}, "
            f"edges={len(self.edges)})"
        )


# --------------------------------------------------------------------------- #
# Coercion helpers (spec-or-object arguments)
# --------------------------------------------------------------------------- #


def as_circuit(obj):
    """Coerce a Circuit, CircuitSpec, or circuit-spec dict to a Circuit."""
    from .circuits.circuit import Circuit

    if isinstance(obj, Circuit):
        return obj
    if isinstance(obj, CircuitSpec):
        return obj.build()
    if isinstance(obj, Mapping):
        return CircuitSpec.from_dict(obj).build()
    raise SpecError(f"cannot interpret {type(obj).__name__} as a circuit")


def as_channel(obj) -> Channel:
    """Coerce a Channel, ChannelSpec, or channel-spec dict to a fresh Channel."""
    if isinstance(obj, Channel):
        return obj
    if isinstance(obj, ChannelSpec):
        return obj.build()
    if isinstance(obj, Mapping):
        return ChannelSpec.from_dict(obj).build()
    raise SpecError(f"cannot interpret {type(obj).__name__} as a channel")


def as_channel_factory(obj) -> Callable[[], Channel]:
    """Coerce a factory callable, ChannelSpec, or spec dict to a factory.

    This is the bridge between the deprecated factory-lambda API and the
    spec API: library builders accept either and normalise through here.
    A channel *instance* is coerced through its spec (every edge must get
    a fresh, unshared channel) -- channels are callable, so without this
    they would be mistaken for factories and fail far from the call site.
    """
    if isinstance(obj, ChannelSpec):
        return obj.build
    if isinstance(obj, Channel):
        return ChannelSpec.from_channel(obj).build
    if isinstance(obj, Mapping):
        return ChannelSpec.from_dict(obj).build
    if callable(obj):
        return obj
    raise SpecError(f"cannot interpret {type(obj).__name__} as a channel factory")


def as_pair(obj) -> InvolutionPair:
    """Coerce an InvolutionPair or pair-spec dict to an InvolutionPair."""
    if isinstance(obj, InvolutionPair):
        return obj
    if isinstance(obj, Mapping):
        return pair_from_dict(obj)
    raise SpecError(f"cannot interpret {type(obj).__name__} as an involution pair")


def as_eta(obj) -> EtaBound:
    """Coerce an EtaBound, ``{"eta_plus", "eta_minus"}`` dict, or 2-tuple."""
    if isinstance(obj, EtaBound):
        return obj
    if isinstance(obj, Mapping):
        return eta_from_dict(obj)
    if isinstance(obj, (tuple, list)) and len(obj) == 2:
        return EtaBound(float(obj[0]), float(obj[1]))
    raise SpecError(f"cannot interpret {type(obj).__name__} as an eta bound")


def as_adversary(obj) -> Adversary:
    """Coerce an Adversary, AdversarySpec, or adversary-spec dict."""
    if isinstance(obj, Adversary):
        return obj
    if isinstance(obj, AdversarySpec):
        return obj.build()
    if isinstance(obj, Mapping):
        return AdversarySpec.from_dict(obj).build()
    raise SpecError(f"cannot interpret {type(obj).__name__} as an adversary")


def as_adversary_factory(obj) -> Callable[[], Adversary]:
    """Coerce a factory callable, AdversarySpec, or spec dict to a factory."""
    if isinstance(obj, AdversarySpec):
        return obj.build
    if isinstance(obj, Mapping):
        return AdversarySpec.from_dict(obj).build
    if callable(obj):
        return obj
    raise SpecError(f"cannot interpret {type(obj).__name__} as an adversary factory")


# --------------------------------------------------------------------------- #
# Experiments
# --------------------------------------------------------------------------- #
# The experiments registry mirrors the channel/delay/adversary registries,
# but the registered object is richer: a runner callable plus a description
# and the kind's default parameters.  The built-in kinds live in
# :mod:`repro.experiments` (and :mod:`repro.fitting.eta_coverage`) and
# register themselves on import; the registry lazily imports them on first
# lookup so `ExperimentSpec("theorem9").run()` works without the caller
# importing anything else.


class ExperimentKind:
    """One registered experiment kind: runner + description + defaults.

    ``runner(params, context)`` receives the fully resolved (defaults
    merged, JSON-canonical) parameter dict plus an
    :class:`~repro.experiments.base.ExperimentContext` carrying the
    execution knobs that must *not* influence the produced numbers
    (backend, worker count), and returns an
    :class:`~repro.experiments.base.ExperimentOutcome`.
    """

    __slots__ = ("kind", "runner", "description", "defaults")

    def __init__(
        self,
        kind: str,
        runner: Callable[..., Any],
        description: str = "",
        defaults: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.kind = str(kind)
        self.runner = runner
        self.description = str(description)
        self.defaults = _jsonify(dict(defaults or {}))

    def __repr__(self) -> str:
        return f"ExperimentKind({self.kind!r})"


_EXPERIMENT_KINDS: Dict[str, ExperimentKind] = {}
_BUILTIN_EXPERIMENTS_LOADED = False


def register_experiment_kind(
    kind: str,
    runner: Callable[..., Any],
    *,
    description: str = "",
    defaults: Optional[Mapping[str, Any]] = None,
    replace: bool = False,
) -> None:
    """Register an experiment kind (the extension hook for user experiments).

    ``defaults`` must be JSON-representable and is the kind's *closed
    parameter schema*: every parameter the runner accepts must appear in
    it (use ``None`` as the default of required/optional-without-value
    parameters), and :meth:`ExperimentSpec.resolved` rejects params
    outside it.  Defaults are merged under the spec's explicit params, so
    two specs differing only in spelled-out defaults hash -- and therefore
    cache -- identically.
    """
    if kind in _EXPERIMENT_KINDS and not replace:
        raise SpecError(f"experiment kind {kind!r} is already registered")
    _EXPERIMENT_KINDS[kind] = ExperimentKind(kind, runner, description, defaults)


def _load_builtin_experiments() -> None:
    """Import the modules that register the built-in experiment kinds.

    The loaded flag is only set after a *successful* import: a failed
    built-in import (broken dependency) must surface again on the next
    lookup instead of leaving a silently partial registry.
    """
    global _BUILTIN_EXPERIMENTS_LOADED
    if _BUILTIN_EXPERIMENTS_LOADED:
        return
    import importlib

    importlib.import_module("repro.experiments")
    _BUILTIN_EXPERIMENTS_LOADED = True


def channel_kinds() -> List[str]:
    """Sorted names of all registered channel kinds."""
    return sorted(_CHANNEL_BUILDERS)


def delay_kinds() -> List[str]:
    """Sorted names of all registered delay-function kinds."""
    return sorted(_DELAY_BUILDERS)


def adversary_kinds() -> List[str]:
    """Sorted names of all registered adversary kinds."""
    return sorted(_ADVERSARY_BUILDERS)


def experiment_kinds() -> List[str]:
    """Sorted names of all registered experiment kinds."""
    _load_builtin_experiments()
    return sorted(_EXPERIMENT_KINDS)


def get_experiment_kind(kind: str) -> ExperimentKind:
    """Look up a registered experiment kind, loading the built-ins if needed."""
    if kind not in _EXPERIMENT_KINDS:
        _load_builtin_experiments()
    try:
        return _EXPERIMENT_KINDS[kind]
    except KeyError:
        raise SpecError(
            f"unknown experiment kind {kind!r}; registered: "
            f"{sorted(_EXPERIMENT_KINDS)}"
        ) from None


class ExperimentSpec(Spec):
    """Declarative description of one experiment run.

    ``kind`` names a registered experiment, ``params`` overrides its
    defaults; both are JSON values, so an experiment -- like a circuit --
    can be stored, diffed, hashed and shipped across processes.  The spec
    hash of the *resolved* form (defaults merged) is the artifact-store
    cache key (:mod:`repro.store`).
    """

    def kind_info(self) -> ExperimentKind:
        """The registered :class:`ExperimentKind` this spec refers to."""
        return get_experiment_kind(self.kind)

    def resolved(self) -> "ExperimentSpec":
        """This spec with the kind's defaults merged under its params.

        Unknown parameter names raise :class:`SpecError` (misspelled
        params silently falling back to defaults would defeat the point of
        a declarative experiment definition); the kind's ``defaults`` are
        the closed parameter schema.  Integer spellings of float-typed
        parameters are promoted (``end_time=200`` and ``end_time=200.0``
        resolve -- and therefore hash and cache -- identically).
        """
        info = self.kind_info()
        unknown = sorted(set(self.params) - set(info.defaults))
        if unknown:
            raise SpecError(
                f"unknown parameter(s) {unknown} for experiment kind "
                f"{self.kind!r}; known: {sorted(info.defaults)}"
            )
        merged = dict(info.defaults)
        for name, value in self.params.items():
            default = info.defaults.get(name)
            if (
                isinstance(default, float)
                and isinstance(value, int)
                and not isinstance(value, bool)
            ):
                value = float(value)
            merged[name] = value
        resolved = ExperimentSpec(self.kind, merged)
        # Plain dict equality would call 200 == 200.0 equal; the canonical
        # JSON key is what hashing/caching use, so compare that instead.
        return self if resolved._canonical() == self._canonical() else resolved

    def run(self, **kwargs):
        """Run this experiment (delegate to :func:`repro.experiments.run_experiment`)."""
        from .experiments.base import run_experiment

        return run_experiment(self, **kwargs)
